// Command bmcd runs the bounded-model-checking service: an HTTP/JSON
// front end that keeps the sebmc engines warm — a bounded job queue
// over a worker pool, a verdict cache, and persistent solver sessions
// so repeated models at deeper bounds resume instead of starting cold.
//
// Usage:
//
//	bmcd [-addr :8080] [-workers N] [-queue 64]
//	     [-cache-mb 16] [-session-mb 64] [-engine portfolio]
//	     [-schedule linear|geometric] [-max-timeout-ms 0]
//	     [-mem-high-water-mb 0] [-quarantine 3] [-quarantine-ttl 30s]
//	     [-cluster-self URL -cluster-shards URL,URL,...]
//	     [-cluster-mode proxy|redirect] [-gossip-interval 1s]
//	     [-replicate=true]
//
// Cluster mode: give every shard the same -cluster-shards list (its own
// advertised URL included) and its own -cluster-self. Each model then
// has exactly one owning shard (rendezvous hashing on the model's
// content hash); a shard receiving a request it does not own proxies it
// to the owner (default) or answers 307 (-cluster-mode redirect), so
// clients may talk to any shard. Shards gossip health over
// GET /v1/cluster/health and shed traffic around draining or saturated
// peers; a SIGTERM drain migrates warm session state to the surviving
// shards. Fresh verdicts replicate write-behind to the key's failover
// shard (park as hints while it is down, anti-entropy repair closes any
// remaining gaps), so a kill -9 of the owner still gets warm answers
// from the survivor; -replicate=false turns all of that off. See the
// README's "Running a cluster" and "Failure and recovery" sections.
//
// The BMCD_FAULTPOINTS environment variable arms fault-injection sites
// for chaos drills (e.g. "sat.propagate=panic@3"); see
// internal/faultpoint. Production runs leave it unset: every site is
// then a single atomic load.
//
// Endpoints (all JSON): POST /v1/check, POST /v1/batch,
// GET /v1/jobs/{id}, GET /v1/results/{id}, DELETE /v1/jobs/{id},
// GET /metrics, GET /healthz. See the README's "Running as a service"
// section for a worked curl session.
//
// Terminal verdicts: a check with {"prove":true} or {"engine":"interp"}
// can answer SAFE — safe at every depth, with a replayable invariant
// certificate — which is cached under a bound-free key and replicated
// like any verdict (receivers re-check the certificate by substitution
// before adopting). Once a model has a terminal verdict, the "bound"
// field of later requests is advisory: any bound answers from cache in
// one lookup (the /metrics verdict_cache.terminal_hits counter).
//
// On SIGTERM or SIGINT the server drains gracefully: new submissions
// are rejected with 503, queued and in-flight jobs run to completion,
// then the process exits 0. A second signal aborts immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	sebmc "repro"
	"repro/internal/faultpoint"
	"repro/internal/service"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "job workers (0 = one per CPU)")
		queue     = flag.Int("queue", 64, "bounded job-queue depth")
		cacheMB   = flag.Int("cache-mb", 16, "verdict cache budget in MiB (0 or negative disables)")
		sessionMB = flag.Int("session-mb", 64, "warm-session budget in MiB (0 or negative disables)")
		engineStr = flag.String("engine", "portfolio", "default engine for requests that name none (interp enables terminal SAFE verdicts)")
		schedStr  = flag.String("schedule", "linear", "default deepening schedule for requests that name none: linear or geometric")
		drainWait = flag.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight jobs on shutdown")
		maxTOMS   = flag.Int("max-timeout-ms", 0, "server-side cap on per-request solving budget in ms (0 = uncapped)")
		highWater = flag.Int("mem-high-water-mb", 0, "overload watermark in MiB over sessions+cache: shed idle sessions, then 503 (0 disables)")
		quarN     = flag.Int("quarantine", 3, "internal errors per (model, engine) before the key is quarantined (negative disables)")
		quarTTL   = flag.Duration("quarantine-ttl", 30*time.Second, "how long a quarantined key is rejected before a half-open probe")

		clusterSelf   = flag.String("cluster-self", "", "this shard's advertised base URL (must appear in -cluster-shards); empty = standalone")
		clusterShards = flag.String("cluster-shards", "", "comma-separated shard base URLs, this shard included; identical on every shard")
		clusterMode   = flag.String("cluster-mode", "proxy", "how non-owned requests reach their owner: proxy or redirect")
		gossipEvery   = flag.Duration("gossip-interval", time.Second, "peer health poll period")
		replicate     = flag.Bool("replicate", true, "replicate fresh verdicts to the failover shard (hinted handoff + anti-entropy repair)")
	)
	flag.Parse()

	if spec := os.Getenv("BMCD_FAULTPOINTS"); spec != "" {
		if err := faultpoint.ArmFromEnv(spec); err != nil {
			log.Fatalf("bmcd: BMCD_FAULTPOINTS: %v", err)
		}
		log.Printf("bmcd: fault injection ARMED: %s (chaos drill, not a production server)", spec)
	}

	engine, err := sebmc.ParseEngine(*engineStr)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := sebmc.ParseSchedule(*schedStr)
	if err != nil {
		log.Fatal(err)
	}
	// 0 explicitly disables: Config treats 0 as "use the default", so
	// an operator sizing a cache to zero must map to the disabled
	// sentinel, not silently get 16/64 MiB back.
	mb := func(v int) int {
		if v <= 0 {
			return -1
		}
		return v << 20
	}
	hw := 0 // watermark: 0 already means disabled, no sentinel needed
	if *highWater > 0 {
		hw = *highWater << 20
	}
	srv := service.New(service.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheBytes:          mb(*cacheMB),
		SessionBytes:        mb(*sessionMB),
		DefaultEngine:       engine,
		DefaultSchedule:     sched,
		MaxTimeout:          time.Duration(*maxTOMS) * time.Millisecond,
		MemHighWater:        hw,
		QuarantineThreshold: *quarN,
		QuarantineTTL:       *quarTTL,
	})

	if *clusterShards != "" {
		if *clusterSelf == "" {
			log.Fatal("bmcd: -cluster-shards requires -cluster-self")
		}
		cc := service.ClusterConfig{
			Self:               *clusterSelf,
			Shards:             strings.Split(*clusterShards, ","),
			Mode:               *clusterMode,
			GossipInterval:     *gossipEvery,
			DisableReplication: !*replicate,
		}
		if err := srv.JoinCluster(cc); err != nil {
			log.Fatal(err)
		}
		log.Printf("bmcd: cluster shard %s of %d (%s mode)", *clusterSelf, len(cc.Shards), *clusterMode)
	} else if *clusterSelf != "" {
		log.Fatal("bmcd: -cluster-self requires -cluster-shards")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Header/read/idle timeouts keep a slow or stalled client from
	// pinning a connection forever; no WriteTimeout, because a wait=true
	// check legitimately holds its response for the whole solve.
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	// Goroutine baseline for the leak report, taken after the signal
	// machinery has spun up its resident goroutine.
	baseline := runtime.NumGoroutine()
	log.Printf("bmcd: listening on %s (default engine %s)", ln.Addr(), engine)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case sig := <-sigs:
		log.Printf("bmcd: %v received, draining (in-flight jobs finish, new submissions get 503)", sig)
	case err := <-serveErr:
		log.Fatalf("bmcd: serve: %v", err)
	}
	// A second signal aborts without draining: restore the default
	// handlers (this also avoids a watcher goroutine that would read as
	// a leak in the exit accounting below).
	signal.Reset(syscall.SIGTERM, syscall.SIGINT)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Fatalf("bmcd: drain did not finish in %v: %v", *drainWait, err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		log.Fatalf("bmcd: http shutdown: %v", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("bmcd: serve: %v", err)
	}

	m := srv.Metrics()
	log.Printf("bmcd: drained cleanly: %d jobs completed, %d rejected, cache hit rate %.2f, peak solver bytes %d",
		m.Completed, m.Rejected, m.Cache.HitRate, m.PeakSolverBytes)
	log.Printf("bmcd: leaked goroutines: %d", leakedGoroutines(baseline))
	fmt.Println("bmcd: shutdown complete")
}

// leakedGoroutines waits briefly for the goroutine count to settle back
// to the pre-serve baseline and reports the overshoot — 0 on a clean
// drain. The count is logged so the CI smoke test can assert on it.
func leakedGoroutines(baseline int) int {
	deadline := time.Now().Add(3 * time.Second)
	for {
		leaked := runtime.NumGoroutine() - baseline
		if leaked <= 0 || time.Now().After(deadline) {
			if leaked < 0 {
				leaked = 0
			}
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}
