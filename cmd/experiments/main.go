// Command experiments regenerates the tables and figures of the paper's
// evaluation section (see EXPERIMENTS.md for the experiment index and
// DESIGN.md for the substitutions).
//
// Usage:
//
//	experiments -e table1            # E1: solved-instance comparison
//	experiments -e growth            # E2: formula size vs bound
//	experiments -e memory            # E3: peak solver memory vs bound
//	experiments -e squaring          # E4: deepening iteration counts
//	experiments -e ablation          # E5: design-choice ablations
//	experiments -e qbfwall           # E6: general QBF vs SAT on tiny model
//	experiments -e deepening         # E8: incremental vs monolithic deepening
//	experiments -e portfolio         # E9: portfolio vs best single engine
//	experiments -e jsatperf          # E10: jSAT hot-path throughput
//	experiments -e deepbug           # E11: deep-counterexample crossover
//	experiments -e all               # everything
//	    [-timelimit 1s] [-csv results.csv] [-jobs N]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/circuits"
)

func main() {
	var (
		exp       = flag.String("e", "all", "experiment: table1, growth, memory, squaring, ablation, qbfwall, bdd, deepening, portfolio, jsatperf, deepbug, all")
		timeLimit = flag.Duration("timelimit", time.Second, "per-instance time budget")
		csvPath   = flag.String("csv", "", "write per-instance table1 results as CSV")
		jobs      = flag.Int("jobs", 1, "parallel workers for the table1 sweep (timings reflect a loaded machine when > 1)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.TimeLimit = *timeLimit
	cfg.Jobs = *jobs

	run := func(name string, fn func()) {
		if *exp == name || *exp == "all" {
			fn()
			fmt.Println()
		}
	}

	run("table1", func() {
		t := bench.RunTable1(cfg)
		t.Write(os.Stdout)
		if *csvPath != "" {
			if err := writeCSV(*csvPath, t); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("per-instance results written to %s\n", *csvPath)
		}
	})
	run("growth", func() {
		sys := circuits.Counter(16, 60000)
		rows := bench.RunGrowth(sys, []int{1, 2, 4, 8, 16, 32, 64, 128, 256}, cfg.Mode)
		bench.WriteGrowth(os.Stdout, sys.Name, rows)
	})
	run("memory", func() {
		sys := circuits.Counter(7, 100)
		rows := bench.RunMemory(sys, []int{10, 20, 40, 60, 80, 100}, cfg)
		bench.WriteMemory(os.Stdout, sys.Name, rows)
	})
	run("squaring", func() {
		rows := bench.RunSquaring([]int{5, 10, 20, 40, 80}, cfg)
		bench.WriteSquaring(os.Stdout, rows)
	})
	run("ablation", func() {
		rows := bench.RunAblations(cfg)
		bench.WriteAblations(os.Stdout, rows)
	})
	run("bdd", func() {
		rows := bench.RunBDD(2_000_000)
		bench.WriteBDD(os.Stdout, rows, 2_000_000)
	})
	run("qbfwall", func() {
		rows := bench.RunQBFWall(8, cfg)
		bench.WriteQBFWall(os.Stdout, rows)
	})
	run("deepening", func() {
		cmps := []bench.DeepeningComparison{
			bench.RunDeepening(bench.LFSRAtDepth(10, 0x204, 64), 64, cfg),
			bench.RunDeepening(circuits.Counter(8, 48), 48, cfg),
			bench.RunDeepening(circuits.TrafficLight(4), 32, cfg),
		}
		bench.WriteDeepening(os.Stdout, cmps)
	})
	run("jsatperf", func() {
		bench.WriteE10(os.Stdout, bench.RunE10(cfg))
	})
	run("deepbug", func() {
		bench.WriteE11(os.Stdout, bench.RunE11(cfg))
	})
	run("portfolio", func() {
		// Wall-clock comparisons need an unloaded machine: the
		// single-engine baselines and the portfolio runs are sequential
		// regardless of -jobs (only the race inside each portfolio run
		// is concurrent).
		seq := cfg
		seq.Jobs = 1
		bench.RunE9(seq, nil).Write(os.Stdout)
	})
}

func writeCSV(path string, t *bench.Table1) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"family", "k", "engine", "status", "elapsed_ms", "conflicts", "nodes", "vars", "clauses"}); err != nil {
		return err
	}
	for _, r := range t.Results {
		rec := []string{
			r.Instance.Family,
			fmt.Sprint(r.Instance.K),
			r.Engine.String(),
			r.Status.String(),
			fmt.Sprint(r.Elapsed.Milliseconds()),
			fmt.Sprint(r.Conflicts),
			fmt.Sprint(r.Nodes),
			fmt.Sprint(r.Vars),
			fmt.Sprint(r.Clauses),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}
