// Command qbfsolve is a standalone QDIMACS solver built on the library's
// search-based QDPLL engine.
//
// Usage:
//
//	qbfsolve [-timeout 60s] [-nodes N] [file.qdimacs]
//
// Reads from stdin when no file is given. Exit status follows the QBF
// evaluation convention: 10 for TRUE, 20 for FALSE, 0 for unknown.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cnf"
	"repro/internal/qbf"
)

func main() {
	var (
		timeout = flag.Duration("timeout", 0, "solve timeout (0 = none)")
		nodes   = flag.Int64("nodes", 0, "search-node budget (0 = none)")
		stats   = flag.Bool("stats", false, "print solver statistics")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	p, err := cnf.ParseQDIMACS(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opts := qbf.Options{NodeBudget: *nodes}
	if *timeout > 0 {
		opts.Deadline = time.Now().Add(*timeout)
	}
	s := qbf.New(p, opts)
	start := time.Now()
	res := s.Solve()
	if *stats {
		fmt.Printf("c nodes=%d propagations=%d maxdepth=%d time=%v\n",
			s.Stats.Nodes, s.Stats.Propagations, s.Stats.MaxDepth,
			time.Since(start).Round(time.Millisecond))
	}
	switch res {
	case qbf.True:
		fmt.Println("s cnf 1")
		os.Exit(10)
	case qbf.False:
		fmt.Println("s cnf 0")
		os.Exit(20)
	default:
		fmt.Println("s cnf -1")
		os.Exit(0)
	}
}
