// Command benchgen materializes the 234-instance evaluation suite as
// files: one ASCII AIGER circuit per family, plus the encoded instances
// — DIMACS CNF for formula (1) and QDIMACS for formula (2) at every
// bound (and formula (3) at power-of-two bounds).
//
// Usage:
//
//	benchgen -out ./suite [-families counter,fifo] [-no-encodings]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/bmc"
	"repro/internal/tseitin"
)

func main() {
	var (
		outDir      = flag.String("out", "suite", "output directory")
		familiesArg = flag.String("families", "", "comma-separated family filter (default: all)")
		noEnc       = flag.Bool("no-encodings", false, "emit circuits only, skip CNF/QDIMACS instances")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, f := range strings.Split(*familiesArg, ",") {
		if f = strings.TrimSpace(f); f != "" {
			want[f] = true
		}
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	nFiles := 0
	for _, fam := range bench.Families() {
		if len(want) > 0 && !want[fam.Name] {
			continue
		}
		sys := fam.Build()
		aagPath := filepath.Join(*outDir, fam.Name+".aag")
		if err := writeTo(aagPath, func(f *os.File) error { return sys.Circ.WriteAAG(f) }); err != nil {
			fatal(err)
		}
		nFiles++
		if *noEnc {
			continue
		}
		for _, k := range bench.Bounds {
			cnfPath := filepath.Join(*outDir, fmt.Sprintf("%s-k%02d.cnf", fam.Name, k))
			enc := bmc.EncodeUnroll(sys, k, tseitin.Full)
			if err := writeTo(cnfPath, func(f *os.File) error { return enc.F.WriteDIMACS(f) }); err != nil {
				fatal(err)
			}
			nFiles++

			qdPath := filepath.Join(*outDir, fmt.Sprintf("%s-k%02d.qdimacs", fam.Name, k))
			lenc := bmc.EncodeLinear(sys, k, tseitin.Full)
			if err := writeTo(qdPath, func(f *os.File) error { return lenc.P.WriteQDIMACS(f) }); err != nil {
				fatal(err)
			}
			nFiles++

			if k&(k-1) == 0 {
				sqPath := filepath.Join(*outDir, fmt.Sprintf("%s-k%02d-sq.qdimacs", fam.Name, k))
				senc, err := bmc.EncodeSquaring(sys, k, tseitin.Full)
				if err != nil {
					fatal(err)
				}
				if err := writeTo(sqPath, func(f *os.File) error { return senc.P.WriteQDIMACS(f) }); err != nil {
					fatal(err)
				}
				nFiles++
			}
		}
	}
	fmt.Printf("benchgen: wrote %d files to %s\n", nFiles, *outDir)
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
