// Command bmcload is an open-loop traffic generator for bmcd: it fires
// checking requests at a fixed arrival rate (goroutine per arrival —
// a slow service does NOT slow the generator down, so queueing delay
// shows up in the numbers instead of being absorbed by a closed loop),
// with model popularity drawn from a zipf distribution over a
// deterministic corpus and a configurable mix of plain checks and
// deepen runs.
//
// Latency is measured from each request's INTENDED arrival time, so
// coordinated omission does not flatter the tail. The run's summary —
// p50/p99 latency, decided verdicts per second, error and lost counts,
// and each target shard's locality and replication counters — is
// appended as one JSON row to -out (default BENCH_9.json).
//
// Usage:
//
//	bmcload -targets http://host1:8080,http://host2:8080 \
//	        [-rate 50] [-duration 10s] [-models 32] [-zipf 1.2]
//	        [-bound-max 16] [-deepen 0.5] [-engine sat-incr]
//	        [-seed 1] [-label ""] [-out BENCH_9.json]
//	        [-kill-shard-after 0 -kill-shard-pid 0]
//
// Failover drill: -kill-shard-after 5s -kill-shard-pid N sends SIGKILL
// to process N that far into the generation window while traffic keeps
// flowing — the generator fails transport-refused requests over to the
// next target, and the row splits the latency tail at the kill mark
// (pre_kill_p99_ms / post_kill_p99_ms) so the cost of losing a shard is
// a number, not an anecdote.
//
// Against a cluster, every target is sprayed round-robin: the routing
// layer concentrates each model on its owning shard regardless of the
// entry point, which is exactly what the per-shard locality counters
// in the output prove (or disprove).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/circuits"
	"repro/internal/model"
	"repro/internal/service"
)

// factorTargets are primes well inside the width-10 product range
// (max 1023² = 1046529): prime means unreachable (no factorization
// exists), and "well inside" keeps the UNSAT proofs genuinely hard —
// targets near the top of the range fall to easy magnitude reasoning,
// these force the solver through the multiplier structure. That makes
// a cold re-solve cost hundreds of milliseconds while a warm proven
// prefix answers instantly, which is the gap the benchmark measures.
// Distinct targets give distinct model hashes.
var factorTargets = []uint64{
	249989, 250007, 250013, 250027, 250031, 250037, 250043, 250049,
	250051, 250057, 250073, 250091, 250109, 250123, 250147, 250153,
}

// corpusModel builds the i-th model of the deterministic corpus:
// unreachable-target factorizers (each bound a real UNSAT proof — the
// expensive-when-cold, cheap-when-warm workload) alternating with deep
// counters (large state depth, trivial solving — popularity filler).
// Every index below 2*len(factorTargets) yields a distinct model hash.
func corpusModel(i int) *model.System {
	if i%2 == 0 {
		return circuits.Factorizer(10, factorTargets[(i/2)%len(factorTargets)])
	}
	return circuits.DeepCounter(uint64(16 + 2*i))
}

func buildCorpus(n int) []string {
	out := make([]string, n)
	for i := range out {
		var b strings.Builder
		if err := corpusModel(i).Reduce().Circ.WriteAAG(&b); err != nil {
			log.Fatalf("bmcload: corpus model %d: %v", i, err)
		}
		out[i] = b.String()
	}
	return out
}

type sample struct {
	arrivalS  float64 // intended arrival offset from the run start
	latencyMS float64
	decided   bool
	status    string
	lost      bool // transport-level failure: no server answer at all
}

// shardStats is the per-target locality evidence captured at the end
// of a run.
type shardStats struct {
	URL            string  `json:"url"`
	Completed      int64   `json:"jobs_completed"`
	SessionHits    int64   `json:"session_hits"`
	SessionMisses  int64   `json:"session_misses"`
	SessionHitRate float64 `json:"session_hit_rate"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
	SessionsLive   int     `json:"sessions_live"`
	OwnedServed    int64   `json:"owned_served,omitempty"`
	ForwardedIn    int64   `json:"forwarded_in,omitempty"`
	ShedServed     int64   `json:"shed_served,omitempty"`
	ReplicatedOut  int64   `json:"replicated_out,omitempty"`
	ReplicatedIn   int64   `json:"replicated_in,omitempty"`
	HintsDrained   int64   `json:"hints_drained,omitempty"`
	HedgesFired    int64   `json:"hedges_fired,omitempty"`
	Unreachable    bool    `json:"unreachable,omitempty"`
}

// benchRow is one appended BENCH_9.json record.
type benchRow struct {
	Label      string    `json:"label,omitempty"`
	Timestamp  time.Time `json:"timestamp"`
	Targets    []string  `json:"targets"`
	Shards     int       `json:"shards"`
	RatePerS   float64   `json:"offered_rate_per_s"`
	DurationS  float64   `json:"duration_s"`
	Models     int       `json:"models"`
	ZipfS      float64   `json:"zipf_s"`
	BoundMax   int       `json:"bound_max"`
	DeepenFrac float64   `json:"deepen_frac"`
	Engine     string    `json:"engine"`
	Seed       int64     `json:"seed"`

	Requests    int     `json:"requests"`
	Decided     int     `json:"decided"`
	VerdictsPS  float64 `json:"verdicts_per_s"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
	Unknown     int     `json:"unknown"`
	Errors      int     `json:"errors"`
	Rejected503 int     `json:"rejected_503"`
	Lost        int     `json:"lost"`

	// Failover drill accounting, present when -kill-shard-after fired:
	// the latency tail on either side of the kill mark.
	KillAfterS    float64 `json:"kill_shard_after_s,omitempty"`
	KilledPID     int     `json:"killed_pid,omitempty"`
	PreKillP99MS  float64 `json:"pre_kill_p99_ms,omitempty"`
	PostKillP99MS float64 `json:"post_kill_p99_ms,omitempty"`
	PostKillLost  int     `json:"post_kill_lost,omitempty"`

	PerShard []shardStats `json:"per_shard"`
	Note     string       `json:"note,omitempty"`
}

func main() {
	var (
		targetsStr = flag.String("targets", "http://localhost:8080", "comma-separated bmcd base URLs to spray round-robin")
		rate       = flag.Float64("rate", 50, "offered arrival rate, requests/second (open loop)")
		duration   = flag.Duration("duration", 10*time.Second, "generation window")
		models     = flag.Int("models", 32, "corpus size (distinct models)")
		zipfS      = flag.Float64("zipf", 1.2, "zipf skew s > 1 over model popularity")
		boundMax   = flag.Int("bound-max", 16, "maximum bound per request")
		deepenP    = flag.Float64("deepen", 0.5, "fraction of requests that are deepen runs")
		engineStr  = flag.String("engine", "sat-incr", "engine every request names")
		seed       = flag.Int64("seed", 1, "workload RNG seed")
		reqTimeout = flag.Duration("req-timeout", 60*time.Second, "per-request client deadline")
		label      = flag.String("label", "", "free-form row label")
		note       = flag.String("note", "", "free-form note recorded in the row")
		out        = flag.String("out", "BENCH_9.json", "JSON file to append the result row to (\"-\" = stdout only)")
		killAfter  = flag.Duration("kill-shard-after", 0, "SIGKILL -kill-shard-pid this far into the run (0 = never): failover drill")
		killPID    = flag.Int("kill-shard-pid", 0, "process to SIGKILL at the -kill-shard-after mark")
	)
	flag.Parse()
	if (*killAfter > 0) != (*killPID > 0) {
		log.Fatal("bmcload: -kill-shard-after and -kill-shard-pid must be set together")
	}

	targets := strings.Split(*targetsStr, ",")
	corpus := buildCorpus(*models)
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(len(corpus)-1))

	// One shared transport: connection reuse across the whole run, with
	// room for every in-flight request of an open loop.
	tr := &http.Transport{MaxIdleConnsPerHost: 512}
	defer tr.CloseIdleConnections()
	clients := make([]*service.Client, len(targets))
	for i, u := range targets {
		clients[i] = &service.Client{
			BaseURL: strings.TrimRight(u, "/"),
			HTTP:    &http.Client{Transport: tr},
			// The generator's own samples should see the service's answer,
			// including 503s, not mask them behind long retry loops.
			MaxRetries:  1,
			BaseBackoff: 50 * time.Millisecond,
		}
	}

	interval := time.Duration(float64(time.Second) / *rate)
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	start := time.Now()
	if *killAfter > 0 {
		go func() {
			time.Sleep(*killAfter)
			if err := syscall.Kill(*killPID, syscall.SIGKILL); err != nil {
				log.Printf("bmcload: SIGKILL pid %d: %v", *killPID, err)
				return
			}
			log.Printf("bmcload: SIGKILLed pid %d %.1fs into the run", *killPID, time.Since(start).Seconds())
		}()
	}
	n := 0
	for {
		arrival := start.Add(time.Duration(n) * interval)
		if arrival.Sub(start) >= *duration {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		// Workload decisions come off the single seeded RNG, in arrival
		// order, so the offered request sequence is identical across runs
		// whatever the service's speed.
		mi := int(zipf.Uint64())
		req := service.CheckRequest{
			Model:  corpus[mi],
			Format: "aag",
			Bound:  1 + rng.Intn(*boundMax),
			Engine: *engineStr,
			Deepen: rng.Float64() < *deepenP,
		}
		entry := n % len(clients)
		wg.Add(1)
		go func(arrival time.Time, req service.CheckRequest, entry int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), *reqTimeout)
			defer cancel()
			res, err := clients[entry].Check(ctx, req)
			// A dead entry point (connection refused — e.g. a shard killed
			// mid-run) is not lost work: a load balancer would eject the
			// backend, so fail over to the next target. An APIError is a
			// real server answer and stands.
			for off := 1; off < len(clients) && err != nil; off++ {
				if _, isAPI := err.(*service.APIError); isAPI {
					break
				}
				res, err = clients[(entry+off)%len(clients)].Check(ctx, req)
			}
			s := sample{
				arrivalS:  arrival.Sub(start).Seconds(),
				latencyMS: float64(time.Since(arrival).Microseconds()) / 1000,
			}
			switch {
			case err == nil:
				s.status = res.Status
				s.decided = res.Status == "REACHABLE" || res.Status == "UNREACHABLE"
			default:
				if ae, ok := err.(*service.APIError); ok {
					s.status = fmt.Sprintf("HTTP %d", ae.StatusCode)
				} else {
					s.status = "LOST"
					s.lost = true
				}
			}
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}(arrival, req, entry)
		n++
	}
	wg.Wait()
	elapsed := time.Since(start)

	row := benchRow{
		Label:      *label,
		Timestamp:  time.Now().UTC(),
		Targets:    targets,
		Shards:     len(targets),
		RatePerS:   *rate,
		DurationS:  elapsed.Seconds(),
		Models:     *models,
		ZipfS:      *zipfS,
		BoundMax:   *boundMax,
		DeepenFrac: *deepenP,
		Engine:     *engineStr,
		Seed:       *seed,
		Requests:   len(samples),
		Note:       *note,
	}
	lats := make([]float64, 0, len(samples))
	for _, s := range samples {
		lats = append(lats, s.latencyMS)
		switch {
		case s.lost:
			row.Lost++
		case s.decided:
			row.Decided++
		case s.status == "UNKNOWN":
			row.Unknown++
		case strings.HasPrefix(s.status, "HTTP 503"):
			row.Rejected503++
		default:
			row.Errors++
		}
	}
	sort.Float64s(lats)
	row.P50MS = percentile(lats, 0.50)
	row.P99MS = percentile(lats, 0.99)
	if len(lats) > 0 {
		row.MaxMS = lats[len(lats)-1]
	}
	row.VerdictsPS = float64(row.Decided) / elapsed.Seconds()
	if *killAfter > 0 {
		row.KillAfterS = killAfter.Seconds()
		row.KilledPID = *killPID
		var pre, post []float64
		for _, s := range samples {
			if s.arrivalS < killAfter.Seconds() {
				pre = append(pre, s.latencyMS)
				continue
			}
			post = append(post, s.latencyMS)
			if s.lost {
				row.PostKillLost++
			}
		}
		sort.Float64s(pre)
		sort.Float64s(post)
		row.PreKillP99MS = percentile(pre, 0.99)
		row.PostKillP99MS = percentile(post, 0.99)
	}

	for i, c := range clients {
		st := shardStats{URL: targets[i]}
		if m, err := c.Metrics(context.Background()); err == nil {
			st.Completed = m.Completed
			st.SessionHits = m.Sessions.Hits
			st.SessionMisses = m.Sessions.Misses
			if tot := st.SessionHits + st.SessionMisses; tot > 0 {
				st.SessionHitRate = float64(st.SessionHits) / float64(tot)
			}
			st.CacheHitRate = m.Cache.HitRate
			st.SessionsLive = m.Sessions.Live
			if m.Cluster != nil {
				st.OwnedServed = m.Cluster.OwnedServed
				st.ForwardedIn = m.Cluster.ForwardedIn
				st.ShedServed = m.Cluster.ShedServed
				st.ReplicatedOut = m.Cluster.Replication.ReplicatedOut
				st.ReplicatedIn = m.Cluster.Replication.ReplicatedIn
				st.HintsDrained = m.Cluster.Replication.HintsDrained
				st.HedgesFired = m.Cluster.Replication.HedgesFired
			}
		} else {
			// A killed shard answers nothing; the row should say so
			// rather than quietly report zeros.
			st.Unreachable = true
		}
		row.PerShard = append(row.PerShard, st)
	}

	pretty, _ := json.MarshalIndent(row, "", "  ")
	fmt.Println(string(pretty))
	if *out != "-" {
		if err := appendRow(*out, row); err != nil {
			log.Fatalf("bmcload: %s: %v", *out, err)
		}
		log.Printf("bmcload: appended row to %s (%d requests, %.1f verdicts/s, p50 %.1fms p99 %.1fms, lost %d)",
			*out, row.Requests, row.VerdictsPS, row.P50MS, row.P99MS, row.Lost)
	}
}

// percentile reads the p-quantile (nearest-rank) off a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// appendRow appends one record to the JSON array in path (created if
// missing).
func appendRow(path string, row benchRow) error {
	var rows []benchRow
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, &rows); err != nil {
			return fmt.Errorf("existing file is not a JSON array of rows: %w", err)
		}
	}
	rows = append(rows, row)
	out, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
