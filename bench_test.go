// Benchmarks regenerating the paper's evaluation, one benchmark group per
// table/figure (see EXPERIMENTS.md for the index):
//
//	BenchmarkTable1_*      — E1: per-engine solve effort on suite slices
//	BenchmarkGrowth_*      — E2: encoding size/time vs bound
//	BenchmarkMemory_*      — E3: peak solver bytes vs bound
//	BenchmarkSquaring_*    — E4: deepening iteration counts
//	BenchmarkAblation_*    — E5: design-choice ablations
//	BenchmarkQBFWall_*     — E6: general QBF vs SAT on formula (2)
//
// Run with: go test -bench=. -benchmem
package sebmc_test

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/bmc"
	"repro/internal/circuits"
	"repro/internal/cnf"
	"repro/internal/jsat"
	"repro/internal/model"
	"repro/internal/qbf"
	"repro/internal/sat"
	"repro/internal/tseitin"
)

// benchConfig bounds each solve tightly so benchmark iterations stay fast.
func benchConfig() bench.Config {
	cfg := bench.DefaultConfig()
	cfg.TimeLimit = 300 * time.Millisecond
	return cfg
}

// table1Slice is a representative 2-bounds-per-family slice of the suite.
func table1Slice() []bench.Instance {
	var out []bench.Instance
	for _, fam := range bench.Families() {
		sys := fam.Build()
		out = append(out,
			bench.Instance{Family: fam.Name, Sys: sys, K: 5},
			bench.Instance{Family: fam.Name, Sys: sys, K: 12},
		)
	}
	return out
}

func benchTable1(b *testing.B, engine bench.EngineKind) {
	insts := table1Slice()
	cfg := benchConfig()
	b.ResetTimer()
	solved := 0
	for i := 0; i < b.N; i++ {
		solved = 0
		for _, inst := range insts {
			if bench.Run(inst, engine, cfg).Solved() {
				solved++
			}
		}
	}
	b.ReportMetric(float64(solved), "solved/26")
}

func BenchmarkTable1_SATUnroll(b *testing.B) { benchTable1(b, bench.EngineSAT) }
func BenchmarkTable1_JSAT(b *testing.B)      { benchTable1(b, bench.EngineJSAT) }
func BenchmarkTable1_QBFLinear(b *testing.B) { benchTable1(b, bench.EngineQBFLinear) }

func benchGrowth(b *testing.B, k int, encode func(*model.System, int) int) {
	sys := circuits.Counter(16, 60000)
	b.ResetTimer()
	clauses := 0
	for i := 0; i < b.N; i++ {
		clauses = encode(sys, k)
	}
	b.ReportMetric(float64(clauses), "clauses")
}

func BenchmarkGrowth_Unroll_k16(b *testing.B) {
	benchGrowth(b, 16, func(s *model.System, k int) int {
		return bmc.EncodeUnroll(s, k, tseitin.Full).F.NumClauses()
	})
}

func BenchmarkGrowth_Unroll_k256(b *testing.B) {
	benchGrowth(b, 256, func(s *model.System, k int) int {
		return bmc.EncodeUnroll(s, k, tseitin.Full).F.NumClauses()
	})
}

func BenchmarkGrowth_Linear_k16(b *testing.B) {
	benchGrowth(b, 16, func(s *model.System, k int) int {
		return bmc.EncodeLinear(s, k, tseitin.Full).P.Matrix.NumClauses()
	})
}

func BenchmarkGrowth_Linear_k256(b *testing.B) {
	benchGrowth(b, 256, func(s *model.System, k int) int {
		return bmc.EncodeLinear(s, k, tseitin.Full).P.Matrix.NumClauses()
	})
}

func BenchmarkGrowth_Squaring_k16(b *testing.B) {
	benchGrowth(b, 16, func(s *model.System, k int) int {
		enc, err := bmc.EncodeSquaring(s, k, tseitin.Full)
		if err != nil {
			b.Fatal(err)
		}
		return enc.P.Matrix.NumClauses()
	})
}

func BenchmarkGrowth_Squaring_k256(b *testing.B) {
	benchGrowth(b, 256, func(s *model.System, k int) int {
		enc, err := bmc.EncodeSquaring(s, k, tseitin.Full)
		if err != nil {
			b.Fatal(err)
		}
		return enc.P.Matrix.NumClauses()
	})
}

func benchMemory(b *testing.B, k int, engine bench.EngineKind) {
	sys := circuits.Counter(7, 100)
	cfg := benchConfig()
	cfg.TimeLimit = 2 * time.Second
	inst := bench.Instance{Family: sys.Name, Sys: sys, K: k}
	b.ResetTimer()
	peak := 0
	for i := 0; i < b.N; i++ {
		r := bench.Run(inst, engine, cfg)
		peak = r.PeakBytes
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

func BenchmarkMemory_SAT_k20(b *testing.B)   { benchMemory(b, 20, bench.EngineSAT) }
func BenchmarkMemory_SAT_k100(b *testing.B)  { benchMemory(b, 100, bench.EngineSAT) }
func BenchmarkMemory_JSAT_k20(b *testing.B)  { benchMemory(b, 20, bench.EngineJSAT) }
func BenchmarkMemory_JSAT_k100(b *testing.B) { benchMemory(b, 100, bench.EngineJSAT) }

func benchSquaring(b *testing.B, depth int, squaring bool) {
	bits := 1
	for (uint64(1) << uint(bits)) <= uint64(depth) {
		bits++
	}
	sys := circuits.Counter(bits+1, uint64(depth))
	check := func(m *model.System, k int) bmc.Result {
		return bmc.SolveUnroll(m, k, bmc.UnrollOptions{Semantics: bmc.AtMost})
	}
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		if squaring {
			iters = bmc.DeepenSquaring(sys, 2*depth, check).Iterations
		} else {
			iters = bmc.DeepenLinear(sys, 2*depth, check).Iterations
		}
	}
	b.ReportMetric(float64(iters), "iterations")
}

func BenchmarkSquaring_LinearSchedule_d40(b *testing.B)   { benchSquaring(b, 40, false) }
func BenchmarkSquaring_SquaringSchedule_d40(b *testing.B) { benchSquaring(b, 40, true) }

func benchAblationJSAT(b *testing.B, opts jsat.Options) {
	sys := circuits.FIFO(3)
	opts.SAT = sat.Options{ConflictBudget: 50_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := jsat.New(sys, opts)
		for _, k := range []int{4, 6, 8} {
			s.Check(k)
		}
	}
}

func BenchmarkAblation_JSATCacheOn(b *testing.B) { benchAblationJSAT(b, jsat.Options{}) }
func BenchmarkAblation_JSATCacheOff(b *testing.B) {
	benchAblationJSAT(b, jsat.Options{DisableCache: true})
}

func benchAblationSAT(b *testing.B, mode tseitin.Mode, opts sat.Options) {
	sys := circuits.Counter(10, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{10, 20} {
			bmc.SolveUnroll(sys, k, bmc.UnrollOptions{Mode: mode, SAT: opts})
		}
	}
}

func BenchmarkAblation_Tseitin(b *testing.B) { benchAblationSAT(b, tseitin.Full, sat.Options{}) }
func BenchmarkAblation_PlaistedGreenbaum(b *testing.B) {
	benchAblationSAT(b, tseitin.PlaistedGreenbaum, sat.Options{})
}
func BenchmarkAblation_NoVSIDS(b *testing.B) {
	benchAblationSAT(b, tseitin.Full, sat.Options{DisableVSIDS: true})
}
func BenchmarkAblation_NoMinimize(b *testing.B) {
	benchAblationSAT(b, tseitin.Full, sat.Options{DisableMinimization: true})
}

func benchQBFWall(b *testing.B, k int, viaQBF bool) {
	sys := circuits.Counter(2, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if viaQBF {
			bmc.SolveLinear(sys, k, bmc.LinearOptions{QBF: qbf.Options{NodeBudget: 5_000_000}})
		} else {
			bmc.SolveUnroll(sys, k, bmc.UnrollOptions{})
		}
	}
}

func BenchmarkQBFWall_SAT_k4(b *testing.B) { benchQBFWall(b, 4, false) }
func BenchmarkQBFWall_SAT_k7(b *testing.B) { benchQBFWall(b, 7, false) }
func BenchmarkQBFWall_QBF_k4(b *testing.B) { benchQBFWall(b, 4, true) }
func BenchmarkQBFWall_QBF_k7(b *testing.B) { benchQBFWall(b, 7, true) }

// benchDeepen measures a full iterative-deepening run to a depth-64
// LFSR counterexample — the E8 comparison: monolithic re-unrolling
// (fresh formula and solver per bound) vs the persistent-solver
// incremental engine (one solver, one new frame per bound).
func benchDeepen(b *testing.B, incremental bool) {
	sys := bench.LFSRAtDepth(10, 0x204, 64)
	b.ResetTimer()
	var d bmc.DeepenResult
	clauses := 0
	for i := 0; i < b.N; i++ {
		if incremental {
			u := bmc.NewIncrementalUnroller(sys, bmc.IncrementalOptions{})
			d = u.Deepen(64)
			clauses = u.Stats().ClausesAdded
		} else {
			clauses = 0
			d = bmc.DeepenLinear(sys, 64, func(m *model.System, k int) bmc.Result {
				r := bmc.SolveUnroll(m, k, bmc.UnrollOptions{})
				clauses += r.Formula.Clauses
				return r
			})
		}
		if d.FoundAt != 64 {
			b.Fatalf("depth-64 LFSR counterexample found at %d, want 64", d.FoundAt)
		}
	}
	b.ReportMetric(float64(clauses), "cum-clauses")
}

func BenchmarkDeepen_Monolithic_d64(b *testing.B)  { benchDeepen(b, false) }
func BenchmarkDeepen_Incremental_d64(b *testing.B) { benchDeepen(b, true) }

// BenchmarkDeepen_Geometric is the E11 headline on the depth-512
// deep-bug family: the geometric schedule over the warm incremental
// engine — doubling to the counterexample, bisecting back to the exact
// depth — against 513 linear invocations.
func BenchmarkDeepen_Geometric(b *testing.B) {
	sys := circuits.DeepCounter(512)
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		d := bmc.DeepenGeometricIncremental(sys, 512, 0, bmc.IncrementalOptions{})
		if d.FoundAt != 512 {
			b.Fatalf("depth-512 counterexample found at %d, want 512", d.FoundAt)
		}
		iters = d.Iterations
	}
	b.ReportMetric(float64(iters), "iterations")
}

// Substrate micro-benchmarks: the hot paths under everything above.

// benchPropagation loads one fixed CNF into a fresh solver per iteration,
// solves it, and reports raw unit-propagation throughput — the number the
// arena clause layout targets. The formula is encoded once outside the
// timed loop so only solver work is measured.
func benchPropagation(b *testing.B, f *cnf.Formula) {
	b.ReportAllocs()
	b.ResetTimer()
	var props int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s := sat.New(sat.Options{})
		for s.NumVars() < f.NumVars() {
			s.NewVar()
		}
		for _, c := range f.Clauses {
			if !s.AddClause(c...) {
				break
			}
		}
		s.Solve()
		props += s.Stats.Propagations
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(props)/sec, "props/s")
	}
}

// BenchmarkPropagation_LFSR_k64 is the depth-64 LFSR deepening workload's
// final (satisfiable) bound, solved monolithically.
func BenchmarkPropagation_LFSR_k64(b *testing.B) {
	sys := bench.LFSRAtDepth(10, 0x204, 64)
	benchPropagation(b, bmc.EncodeUnroll(sys, 64, tseitin.Full).F)
}

// BenchmarkPropagation_Table1Counter is a Table-1 suite-slice instance:
// the deep counter family at a combinatorially non-trivial bound.
func BenchmarkPropagation_Table1Counter(b *testing.B) {
	sys := circuits.Counter(10, 500)
	benchPropagation(b, bmc.EncodeUnroll(sys, 24, tseitin.Full).F)
}

func BenchmarkSAT_Pigeonhole7(b *testing.B) {
	const n = 7
	for i := 0; i < b.N; i++ {
		s := sat.New(sat.Options{})
		p := make([][]cnf.Var, n+2)
		for x := 1; x <= n+1; x++ {
			p[x] = make([]cnf.Var, n+1)
			for y := 1; y <= n; y++ {
				p[x][y] = s.NewVar()
			}
		}
		for x := 1; x <= n+1; x++ {
			lits := make([]cnf.Lit, 0, n)
			for y := 1; y <= n; y++ {
				lits = append(lits, cnf.PosLit(p[x][y]))
			}
			s.AddClause(lits...)
		}
		for y := 1; y <= n; y++ {
			for x1 := 1; x1 <= n+1; x1++ {
				for x2 := x1 + 1; x2 <= n+1; x2++ {
					s.AddClause(cnf.NegLit(p[x1][y]), cnf.NegLit(p[x2][y]))
				}
			}
		}
		if s.Solve() != sat.Unsat {
			b.Fatal("PHP must be unsat")
		}
	}
}

func jsatDeepCounterWorkload(tb testing.TB, sys *model.System) {
	s := jsat.New(sys, jsat.Options{})
	if s.Check(120).Status != bmc.Reachable {
		tb.Fatal("deep counter must be reachable")
	}
}

func BenchmarkJSAT_DeepCounter(b *testing.B) {
	sys := circuits.Counter(8, 120)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		jsatDeepCounterWorkload(b, sys)
	}
}

// The E10 hot-path benchmarks: jSAT's DFS inner loop is thousands of
// tiny incremental queries sharing an assumption prefix. queries/s and
// allocs/op here are the numbers the allocation-free core targets
// (BENCH_4.json records the before/after).

// benchJSATQueries reports aggregate query throughput of fn, which
// returns the cumulative query count of one iteration.
func benchJSATQueries(b *testing.B, fn func() int64) {
	b.ReportAllocs()
	b.ResetTimer()
	var queries int64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		queries += fn()
	}
	if sec := time.Since(start).Seconds(); sec > 0 {
		b.ReportMetric(float64(queries)/sec, "queries/s")
	}
}

// jsatLFSR64DeepenWorkload is the depth-64 LFSR deepening run: one
// solver checks every bound 1..64 (Unreachable until exactly 64). The
// hopeless cache grows to O(k²) entries across the run, so any
// per-query walk of the cache shows up directly in queries/s. Shared by
// the benchmark and the allocs/op regression gate.
func jsatLFSR64DeepenWorkload(tb testing.TB, sys *model.System) int64 {
	s := jsat.New(sys, jsat.Options{Semantics: bmc.Exact})
	for k := 1; k <= 64; k++ {
		st := s.Check(k).Status
		if want := k == 64; (st == bmc.Reachable) != want {
			tb.Fatalf("lfsr k=%d: %v", k, st)
		}
	}
	return s.Stats.Queries
}

func BenchmarkJSAT_LFSR64Deepen(b *testing.B) {
	sys := bench.LFSRAtDepth(10, 0x204, 64)
	benchJSATQueries(b, func() int64 { return jsatLFSR64DeepenWorkload(b, sys) })
}

// jsatFIFOEnumWorkload is a branching UNSAT-ish search: wide successor
// enumeration at every frame, cache-hit heavy — the assumption-prefix
// reuse workload.
func jsatFIFOEnumWorkload(tb testing.TB, sys *model.System) int64 {
	s := jsat.New(sys, jsat.Options{Semantics: bmc.Exact})
	for _, k := range []int{4, 6, 8} {
		if s.Check(k).Status == bmc.Unknown {
			tb.Fatal("fifo: unexpected Unknown")
		}
	}
	return s.Stats.Queries
}

func BenchmarkJSAT_FIFOEnum(b *testing.B) {
	sys := circuits.FIFO(3)
	benchJSATQueries(b, func() int64 { return jsatFIFOEnumWorkload(b, sys) })
}

// BenchmarkJSAT_Table1Slice sweeps the jSAT-friendly Table-1 families at
// two bounds each, fresh solver per instance — the end-to-end E1 shape.
func BenchmarkJSAT_Table1Slice(b *testing.B) {
	var insts []bench.Instance
	for _, fam := range bench.Families() {
		switch fam.Name {
		case "counter", "counteren", "tokenring", "lfsr", "traffic", "fifo":
			sys := fam.Build()
			insts = append(insts,
				bench.Instance{Family: fam.Name, Sys: sys, K: 5},
				bench.Instance{Family: fam.Name, Sys: sys, K: 12})
		}
	}
	cfg := benchConfig()
	benchJSATQueries(b, func() int64 {
		var queries int64
		for _, inst := range insts {
			d := time.Now().Add(cfg.TimeLimit)
			s := jsat.New(inst.Sys, jsat.Options{
				Semantics:   bmc.Exact,
				QueryBudget: cfg.JSATQueries,
				Deadline:    d,
				SAT:         sat.Options{ConflictBudget: cfg.JSATConflictsPerQuery, Deadline: d},
			})
			s.Check(inst.K)
			queries += s.Stats.Queries
		}
		return queries
	})
}

func BenchmarkUnroll_Encode_k64(b *testing.B) {
	sys := circuits.Counter(16, 60000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bmc.EncodeUnroll(sys, 64, tseitin.Full)
	}
}
