package sebmc_test

// Tests for the warm-engine facade: ModelHash as a content address and
// Session as a persistent handle whose proven-unreachable prefix makes
// repeated deepening requests resume instead of restarting — the
// contract the bmcd service's session pool is built on.

import (
	"strings"
	"testing"

	sebmc "repro"
	"repro/internal/circuits"
)

func TestModelHashIsContentAddress(t *testing.T) {
	a := circuits.Counter(3, 5)
	b := circuits.Counter(3, 5)
	c := circuits.Counter(3, 6)
	if sebmc.ModelHash(a) != sebmc.ModelHash(b) {
		t.Fatal("identical circuits hash differently")
	}
	if sebmc.ModelHash(a) == sebmc.ModelHash(c) {
		t.Fatal("different bad predicates hash equally")
	}
	b.Name = "renamed"
	if sebmc.ModelHash(a) != sebmc.ModelHash(b) {
		t.Fatal("hash depends on the model name")
	}
}

// TestModelHashCanonicalAcrossSerialization: the address must survive a
// serialization round-trip — a model parsed from MSL and the same model
// re-read from its own AAG rendering hash identically. The cluster's
// verdict replication depends on this: the receiver re-derives the
// shipped model's hash and matches it against the sender's cache key.
func TestModelHashCanonicalAcrossSerialization(t *testing.T) {
	src := `
model cex
var c : 3 = 0;
next c = c + 1;
bad c == 5;
`
	sys, err := sebmc.LoadMSL(src)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sys.Reduce().Circ.WriteAAG(&b); err != nil {
		t.Fatal(err)
	}
	again, err := sebmc.LoadAIGER(strings.NewReader(b.String()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if h1, h2 := sebmc.ModelHash(sys), sebmc.ModelHash(again); h1 != h2 {
		t.Fatalf("round-trip changed the content address: %s -> %s", h1, h2)
	}
}

func TestSessionRejectsNonIncrementalEngines(t *testing.T) {
	sys := circuits.Counter(3, 5)
	for _, e := range []sebmc.Engine{sebmc.EngineSAT, sebmc.EngineQBFLinear, sebmc.EngineQBFSquaring, sebmc.EnginePortfolio} {
		if _, err := sebmc.NewSession(sys, e, sebmc.Options{}); err == nil {
			t.Errorf("NewSession(%v) accepted a non-incremental engine", e)
		}
	}
}

// TestSessionDeepenResumes is the acceptance-criterion test: deepening
// to bound k and then to k+4 must solve only the four new bounds the
// second time.
func TestSessionDeepenResumes(t *testing.T) {
	for _, engine := range []sebmc.Engine{sebmc.EngineSATIncr, sebmc.EngineJSAT} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := circuits.Counter(3, 5) // shortest counterexample at k=5
			sess, err := sebmc.NewSession(sys, engine, sebmc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			d := sess.Deepen(3)
			if d.Status != sebmc.Unreachable {
				t.Fatalf("deepen to 3: got %v, want UNREACHABLE", d.Status)
			}
			if st := sess.Stats(); st.BoundsRun != 4 || st.ProvenUpTo != 3 {
				t.Fatalf("after deepen(3): BoundsRun=%d ProvenUpTo=%d, want 4 and 3", st.BoundsRun, st.ProvenUpTo)
			}
			d = sess.Deepen(7)
			if d.Status != sebmc.Reachable || d.FoundAt != 5 {
				t.Fatalf("deepen to 7: got %v at %d, want REACHABLE at 5", d.Status, d.FoundAt)
			}
			if d.Witness == nil {
				t.Fatal("no witness from warm deepen")
			}
			if err := d.Witness.Validate(d.System); err != nil {
				t.Fatalf("warm-deepen witness does not replay: %v", err)
			}
			st := sess.Stats()
			// Resumed at bound 4: only bounds 4 and 5 were solved.
			if st.BoundsRun != 6 {
				t.Fatalf("resumed deepen solved %d bounds total, want 6 (4 cold + 2 warm)", st.BoundsRun)
			}
			if st.BoundsSaved != 4 {
				t.Fatalf("BoundsSaved=%d, want 4", st.BoundsSaved)
			}
			// A whole deepen inside the proven prefix is free.
			d = sess.Deepen(3)
			if d.Status != sebmc.Unreachable || sess.Stats().BoundsRun != 6 {
				t.Fatal("deepen within the proven prefix re-solved bounds")
			}
		})
	}
}

// TestSessionGeometricDeepenResumes: a geometric-schedule session runs
// the doubling-plus-bisection schedule on the warm solver, and a second
// deepen resumes from the proven prefix — the schedule starts past it
// and the bisection never probes inside it.
func TestSessionGeometricDeepenResumes(t *testing.T) {
	for _, engine := range []sebmc.Engine{sebmc.EngineSATIncr, sebmc.EngineJSAT} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := circuits.Counter(4, 9) // shortest counterexample at k=9
			sess, err := sebmc.NewSession(sys, engine, sebmc.Options{Schedule: sebmc.ScheduleGeometric})
			if err != nil {
				t.Fatal(err)
			}
			d := sess.Deepen(6)
			if d.Status != sebmc.Unreachable {
				t.Fatalf("deepen to 6: got %v, want UNREACHABLE", d.Status)
			}
			// Geometric bounds 0,1,2,4,6 — five invocations where linear
			// would run seven.
			if d.Iterations != 5 {
				t.Fatalf("geometric deepen to 6 ran %d bounds (%v), want 5", d.Iterations, d.BoundsTried)
			}
			if st := sess.Stats(); st.ProvenUpTo != 6 {
				t.Fatalf("ProvenUpTo=%d after at-most deepen to 6, want 6", st.ProvenUpTo)
			}
			d = sess.Deepen(16)
			if d.Status != sebmc.Reachable || d.FoundAt != 9 {
				t.Fatalf("deepen to 16: got %v at %d, want REACHABLE at 9", d.Status, d.FoundAt)
			}
			// Resumed past the proven prefix: 7, 14, then bisecting (7,14]
			// at 10, 8, 9 — five warm invocations.
			if d.Iterations != 5 {
				t.Fatalf("warm geometric deepen ran %d bounds (%v), want 5", d.Iterations, d.BoundsTried)
			}
			for _, k := range d.BoundsTried {
				if k <= 6 {
					t.Fatalf("warm geometric deepen probed %d inside the proven prefix (%v)", k, d.BoundsTried)
				}
			}
			if d.Witness == nil {
				t.Fatal("no witness from warm geometric deepen")
			}
			if err := d.Witness.Validate(d.System); err != nil {
				t.Fatalf("warm geometric witness does not replay: %v", err)
			}
			// A deepen entirely inside the proven prefix stays free.
			before := sess.Stats().BoundsRun
			if d := sess.Deepen(5); d.Status != sebmc.Unreachable || sess.Stats().BoundsRun != before {
				t.Fatal("deepen within the proven prefix re-solved bounds")
			}
		})
	}
}

func TestSessionCheckMatchesFreshCheck(t *testing.T) {
	for _, engine := range []sebmc.Engine{sebmc.EngineSATIncr, sebmc.EngineJSAT} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := circuits.TokenRing(5) // cex at k=4, then every 5
			sess, err := sebmc.NewSession(sys, engine, sebmc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k <= 9; k++ {
				want := sebmc.Check(sys, k, engine, sebmc.Options{})
				got := sess.Check(k)
				if got.Status != want.Status {
					t.Fatalf("k=%d: session says %v, fresh check says %v", k, got.Status, want.Status)
				}
				if got.Status == sebmc.Reachable {
					if got.Witness == nil {
						t.Fatalf("k=%d: reachable without witness", k)
					}
					if err := got.Witness.Validate(got.System); err != nil {
						t.Fatalf("k=%d: witness does not replay: %v", k, err)
					}
				}
			}
		})
	}
}

// TestSessionAtMostPrefix: one at-most-k Unreachable answer proves every
// smaller bound, so later checks below it are free.
func TestSessionAtMostPrefix(t *testing.T) {
	sys := circuits.TrafficLight(2) // safe at every bound
	sess, err := sebmc.NewSession(sys, sebmc.EngineJSAT, sebmc.Options{Semantics: sebmc.AtMost})
	if err != nil {
		t.Fatal(err)
	}
	if r := sess.Check(6); r.Status != sebmc.Unreachable {
		t.Fatalf("got %v, want UNREACHABLE", r.Status)
	}
	runs := sess.Stats().BoundsRun
	for k := 0; k <= 6; k++ {
		if r := sess.Check(k); r.Status != sebmc.Unreachable {
			t.Fatalf("k=%d: got %v, want UNREACHABLE", k, r.Status)
		}
	}
	if st := sess.Stats(); st.BoundsRun != runs {
		t.Fatalf("checks under the at-most prefix re-ran the solver (%d -> %d bounds)", runs, st.BoundsRun)
	}
}

// TestSessionCancelDoesNotPoison: a cancelled request returns Unknown,
// and the session still answers the next request correctly — the
// one-shot flag must not stick to the warm solver.
func TestSessionCancelDoesNotPoison(t *testing.T) {
	for _, engine := range []sebmc.Engine{sebmc.EngineSATIncr, sebmc.EngineJSAT} {
		t.Run(engine.String(), func(t *testing.T) {
			sys := circuits.Counter(3, 5)
			sess, err := sebmc.NewSession(sys, engine, sebmc.Options{})
			if err != nil {
				t.Fatal(err)
			}
			dead := sebmc.NewCancelFlag()
			dead.Set()
			if r := sess.CheckWith(5, dead); r.Status != sebmc.Unknown {
				t.Fatalf("pre-cancelled request: got %v, want UNKNOWN", r.Status)
			}
			if r := sess.Check(5); r.Status != sebmc.Reachable {
				t.Fatalf("request after a cancelled one: got %v, want REACHABLE", r.Status)
			}
		})
	}
}
