package sebmc

// This file is the warm-engine face of the library: ModelHash (a
// content address for transition systems, the cache key of the bmcd
// verdict cache) and Session, a persistent handle that keeps one
// incremental engine alive across many requests. A Session is what
// turns the paper's "one copy of the transition relation" from a
// per-query property into a per-*service* property: a model checked at
// bound k and later at k+4 resumes the same solver — learned clauses,
// hopeless-state cache, and the proven-unreachable prefix all carry
// over, so only the four new bounds are ever solved.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bmc"
	"repro/internal/jsat"
	"repro/internal/sat"
)

// ModelHash returns a content address for the system: a hex digest of
// the reduced circuit's AIGER serialization plus the bad-literal
// selection. Hashing the cone-of-influence reduction makes the address
// canonical: two systems with equal hashes encode the same checking
// problem regardless of how they were loaded, what they are named, or
// how many serialization round-trips they survived — LoadMSL output
// and its own WriteAAG round-trip address the same cache entries,
// which is what lets a cluster ship a model to a peer and have the
// peer verify it against the sender's key.
func ModelHash(sys *System) string {
	red := sys.Reduce()
	h := sha256.New()
	// WriteAAG to a hash never fails: hash.Hash writes are infallible.
	_ = red.Circ.WriteAAG(h)
	fmt.Fprintf(h, "|bad=%d", uint32(red.Bad))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// SessionStats counts the work a Session has answered and what it
// retained.
type SessionStats struct {
	Checks      int // Check/Deepen requests served
	BoundsRun   int // bounds actually solved (cold work)
	BoundsSaved int // bounds answered from the proven prefix (warm work)
	ProvenUpTo  int // all bounds 0..ProvenUpTo are Unreachable (-1: none)
	MemBytes    int // retained solver footprint, honestly accounted
}

// Session is a persistent checking handle: one warm incremental engine
// (EngineSATIncr or EngineJSAT — the two engines whose solvers are
// designed to live across bounds) serving any number of Check and
// Deepen requests for one system. The session tracks the contiguous
// prefix of bounds already proven Unreachable, so a Deepen to a larger
// bound resumes where the last one stopped instead of re-solving from
// bound 0. All methods are safe for concurrent use; requests are
// serialized on the session's lock (the underlying solver is single-
// threaded state).
type Session struct {
	mu     sync.Mutex
	engine Engine
	opts   Options
	sys    *System

	incr *bmc.IncrementalUnroller // EngineSATIncr
	js   *jsat.Solver             // EngineJSAT

	proven int // bounds 0..proven are Unreachable; -1 = nothing proven
	stats  SessionStats

	// poisoned is set when a request on this session panicked: the
	// solver's invariants may be arbitrarily broken mid-unwind, so no
	// later request may touch it. Guarded by mu.
	poisoned bool

	// memHint is the retained footprint as of the last completed
	// request, readable without the session lock: a pool accounting a
	// finished request's bytes must not block behind a concurrent
	// long-running solve on the same session.
	memHint atomic.Int64
}

// NewSession builds a warm session for sys. Only EngineSATIncr and
// EngineJSAT are supported — the remaining engines re-encode per query
// and gain nothing from staying resident; use Check for those.
// Options.Timeout applies per request (re-armed on every Check/Deepen
// call); Options.Cancel, when set, is the session-wide default signal,
// overridable per call via CheckWith/DeepenWith.
//
// Options.ScheduleGeometric forces at-most-k semantics for the whole
// session — the solver is prepared once, at construction, and skipping
// bounds is unsound under exact-k — so Check answers on such a session
// are at-most-k answers too.
func NewSession(sys *System, engine Engine, opts Options) (*Session, error) {
	if opts.Schedule == ScheduleGeometric {
		opts.Semantics = AtMost
	}
	s := &Session{engine: engine, opts: opts, sys: sys, proven: -1}
	s.stats.ProvenUpTo = -1
	switch engine {
	case EngineSATIncr:
		io := opts.incremental()
		// The session arms one deadline per request instead of one per
		// bound, so a Deepen request's timeout covers the whole loop.
		io.QueryTimeout = 0
		s.incr = bmc.NewIncrementalUnroller(sys, io)
	case EngineJSAT:
		s.js = jsat.New(sys, jsat.Options{
			Semantics:    opts.Semantics,
			Mode:         opts.mode(),
			QueryBudget:  opts.QueryBudget,
			Cancel:       opts.Cancel,
			DisableCache: opts.DisableJSATCache,
			SAT:          sat.Options{ConflictBudget: opts.ConflictBudget},
		})
	default:
		return nil, fmt.Errorf("sebmc: engine %v cannot run as a session (want sat-incr or jsat)", engine)
	}
	return s, nil
}

// Engine returns the engine the session runs.
func (s *Session) Engine() Engine { return s.engine }

// System returns the system the session was built for.
func (s *Session) System() *System { return s.sys }

// Stats returns a snapshot of the session's counters, including the
// retained solver footprint (ClauseDBBytes high water for the
// incremental engine, live MemBytes for jSAT).
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Session) snapshotLocked() SessionStats {
	st := s.stats
	st.ProvenUpTo = s.proven
	if s.incr != nil {
		st.MemBytes = s.incr.Stats().PeakBytes
	} else {
		st.MemBytes = s.js.MemBytes()
	}
	return st
}

// Poisoned reports whether a request on this session panicked. A
// poisoned session answers every further request with an
// ErrSessionPoisoned result; pools must discard it, releasing its
// accounted bytes, and build a fresh session on next demand.
func (s *Session) Poisoned() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.poisoned
}

// containLocked is the deferred recover of CheckWith: a panic anywhere
// in the warm solver becomes a PanicError result and marks the session
// poisoned. It runs before noteMemLocked and the unlock (LIFO), so the
// mark is made while the lock is still held and the memory hint never
// reads a half-unwound solver.
func (s *Session) containLocked(res *Result, k int) {
	if v := recover(); v != nil {
		s.poisoned = true
		*res = Result{Status: Unknown, K: k, DecidedBy: s.engine.String(),
			Err: &PanicError{Val: v, Stack: stackTrace()}}
	}
}

// containDeepenLocked is containLocked for DeepenWith.
func (s *Session) containDeepenLocked(res *DeepenResult) {
	if v := recover(); v != nil {
		s.poisoned = true
		*res = DeepenResult{Status: Unknown, FoundAt: -1, DecidedBy: s.engine.String(),
			Err: &PanicError{Val: v, Stack: stackTrace()}}
	}
}

// noteMemLocked refreshes the lock-free footprint hint. Callers hold
// s.mu.
func (s *Session) noteMemLocked() {
	if s.poisoned {
		// The solver may be mid-unwind; its accounting is as untrusted
		// as the rest of it. The pool discards the session anyway.
		return
	}
	if s.incr != nil {
		s.memHint.Store(int64(s.incr.Stats().PeakBytes))
	} else {
		s.memHint.Store(int64(s.js.MemBytes()))
	}
}

// MemBytesHint returns the session's retained solver footprint as of
// the last completed request. Unlike Stats, it never blocks: it reads
// an atomic snapshot instead of taking the session lock, so callers
// accounting memory are not serialized behind an in-flight solve.
func (s *Session) MemBytesHint() int { return int(s.memHint.Load()) }

// arm prepares the solvers for one request: per-request deadline and
// the effective cancellation flag. Callers must hold s.mu.
func (s *Session) arm(c *CancelFlag) {
	if c == nil {
		c = s.opts.Cancel
	}
	var d time.Time
	if s.opts.Timeout > 0 {
		d = time.Now().Add(s.opts.Timeout)
	}
	if s.incr != nil {
		s.incr.SetDeadline(d)
		s.incr.SetCancel(c)
	} else {
		s.js.SetDeadline(d)
		s.js.SetCancel(c)
	}
}

// disarm drops the per-request flag so a one-shot cancel signal set
// after its request finished cannot poison the next request.
func (s *Session) disarm() {
	if s.incr != nil {
		s.incr.SetCancel(s.opts.Cancel)
	} else {
		s.js.SetCancel(s.opts.Cancel)
	}
}

// checkLocked answers one bound on the warm engine.
func (s *Session) checkLocked(k int) Result {
	var r Result
	if s.incr != nil {
		r = s.incr.CheckBound(k)
	} else {
		r = s.js.Check(k)
	}
	s.stats.BoundsRun++
	s.noteLocked(k, r.Status)
	r.DecidedBy = s.engine.String()
	return r
}

// noteLocked extends the proven-unreachable prefix. Under AtMost
// semantics an Unreachable answer at k covers every bound ≤ k; under
// Exact it only extends a contiguous prefix.
func (s *Session) noteLocked(k int, st Status) {
	if st != Unreachable {
		return
	}
	if s.opts.Semantics == AtMost {
		if k > s.proven {
			s.proven = k
		}
	} else if k == s.proven+1 {
		s.proven = k
	}
}

// Check answers one bounded query on the warm engine, reusing all
// retained solver state. Equivalent to CheckWith(k, nil).
func (s *Session) Check(k int) Result { return s.CheckWith(k, nil) }

// CheckWith is Check with a per-request cancellation flag (nil falls
// back to the session's Options.Cancel). A panic inside the warm solver
// is recovered into a PanicError result and poisons the session: every
// later request fails fast with ErrSessionPoisoned, and the pool
// holding the session must discard it.
func (s *Session) CheckWith(k int, c *CancelFlag) (res Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.noteMemLocked()
	defer s.containLocked(&res, k)
	if s.poisoned {
		return Result{Status: Unknown, K: k, DecidedBy: s.engine.String(), Err: ErrSessionPoisoned}
	}
	s.stats.Checks++
	if k <= s.proven {
		// Already proven unreachable at this bound (for Exact, the
		// prefix proof at bound k is exactly the earlier bound-k query).
		s.stats.BoundsSaved++
		return Result{Status: Unreachable, K: k, System: s.system(), DecidedBy: s.engine.String()}
	}
	s.arm(c)
	defer s.disarm()
	return s.checkLocked(k)
}

// Deepen searches bounds 0..maxBound for the shortest counterexample,
// resuming from the session's proven prefix: bounds already proven
// Unreachable by earlier requests are skipped, counted in
// SessionStats.BoundsSaved. The session's Options.Schedule selects the
// bound schedule — linear stepping or the geometric schedule with
// binary-search refinement; both report the same FoundAt. Equivalent to
// DeepenWith(maxBound, nil).
func (s *Session) Deepen(maxBound int) DeepenResult { return s.DeepenWith(maxBound, nil) }

// DeepenWith is Deepen with a per-request cancellation flag. Panics
// are contained the same way as CheckWith: the result carries a
// PanicError and the session is poisoned.
func (s *Session) DeepenWith(maxBound int, c *CancelFlag) (out DeepenResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.noteMemLocked()
	defer s.containDeepenLocked(&out)
	if s.poisoned {
		return DeepenResult{Status: Unknown, FoundAt: -1, DecidedBy: s.engine.String(), Err: ErrSessionPoisoned}
	}
	s.stats.Checks++
	res := DeepenResult{FoundAt: -1, DecidedBy: s.engine.String()}
	start := s.proven + 1
	s.stats.BoundsSaved += min(start, maxBound+1)
	if start > maxBound {
		res.Status = Unreachable
		res.System = s.system()
		return res
	}
	s.arm(c)
	defer s.disarm()
	if s.opts.Schedule == ScheduleGeometric {
		// The geometric core drives the warm engine through checkLocked,
		// so every probe — doubling or refinement — lands on the same
		// persistent solver, and Unreachable probes keep extending the
		// proven prefix (the session runs at-most-k, see NewSession).
		d := bmc.DeepenGeometricFrom(s.proven, maxBound, s.opts.GeometricRatio,
			func(k int) Result { return s.checkLocked(k) })
		d.DecidedBy = s.engine.String()
		if d.Status == Unreachable {
			d.System = s.system()
		}
		return d
	}
	for k := start; k <= maxBound; k++ {
		res.Iterations++
		res.BoundsTried = append(res.BoundsTried, k)
		r := s.checkLocked(k)
		switch r.Status {
		case Reachable:
			res.Status = Reachable
			res.FoundAt = k
			res.Witness = r.Witness
			res.System = r.System
			return res
		case Unknown:
			res.Status = Unknown
			return res
		}
	}
	res.Status = Unreachable
	res.System = s.system()
	return res
}

// SeedProven extends the session's proven-unreachable prefix to k
// without solving anything: the caller asserts that bounds 0..k are
// Unreachable for this system under the session's semantics. This is
// the session-migration handoff — a draining shard serializes its
// session's ProvenUpTo and the new owner resumes from it instead of
// re-solving the prefix cold. The assertion is trusted: seed only from
// a prefix some session of the same (system, semantics) actually
// proved. Values at or below the current prefix are no-ops.
func (s *Session) SeedProven(k int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if k > s.proven {
		s.proven = k
	}
}

// system returns the encoded (post-transform) system, the one witnesses
// validate against.
func (s *Session) system() *System {
	if s.incr != nil {
		return s.incr.System()
	}
	return s.js.System()
}
