// TestJSATAllocBudget is the CI allocation-regression gate behind the
// bench-smoke step: it re-runs the deterministic BenchmarkJSAT_*
// workloads under testing.AllocsPerRun and fails when allocs/op exceeds
// 2× the baseline committed in BENCH_4.json — a creeping re-allocation
// of the jSAT hot path (assumption buffers, cache probes, readbacks)
// trips it long before it would show up in wall-clock.
package sebmc_test

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/circuits"
)

// bench4 mirrors the slice of BENCH_4.json the gate needs.
type bench4 struct {
	Benchmarks map[string]struct {
		After struct {
			AllocsPerOp float64 `json:"allocs_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

func TestJSATAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	data, err := os.ReadFile("BENCH_4.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var base bench4
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatalf("parsing BENCH_4.json: %v", err)
	}
	check := func(name string, fn func()) {
		t.Helper()
		b, ok := base.Benchmarks[name]
		if !ok || b.After.AllocsPerOp <= 0 {
			t.Fatalf("BENCH_4.json has no after.allocs_per_op for %s", name)
		}
		got := testing.AllocsPerRun(1, fn)
		if got > 2*b.After.AllocsPerOp {
			t.Errorf("%s allocates %.0f/op, over 2x the committed baseline %.0f/op",
				name, got, b.After.AllocsPerOp)
		}
	}
	// Only the deterministic workloads: Table1Slice depends on a
	// wall-clock budget, so its allocation count is not reproducible.
	lfsr := bench.LFSRAtDepth(10, 0x204, 64)
	check("BenchmarkJSAT_LFSR64Deepen", func() { jsatLFSR64DeepenWorkload(t, lfsr) })
	fifo := circuits.FIFO(3)
	check("BenchmarkJSAT_FIFOEnum", func() { jsatFIFOEnumWorkload(t, fifo) })
	counter := circuits.Counter(8, 120)
	check("BenchmarkJSAT_DeepCounter", func() { jsatDeepCounterWorkload(t, counter) })
}
