// Package sebmc is the public face of the Space-Efficient Bounded Model
// Checking library, a from-scratch Go reproduction of Katz, Hanna and
// Dershowitz, "Space-Efficient Bounded Model Checking" (DATE 2005).
//
// The library answers bounded reachability questions — "can this
// sequential circuit reach a bad state in (exactly / at most) k steps?" —
// with five interchangeable engines plus a concurrent portfolio:
//
//   - EngineSAT: classical BMC; unrolls the transition relation k times
//     into one propositional formula (the paper's formula (1)) and hands
//     it to the built-in CDCL solver.
//   - EngineSATIncr: incremental BMC over the same formula (1), in the
//     assumption-based style MiniSat introduced and Biere et al.,
//     "Linear Encodings of Bounded LTL Model Checking", build on: one
//     persistent CDCL solver holds the unrolling for a whole deepening
//     run, each bound adds only frame k's transition clauses on top of
//     frames 0..k-1, the bad property at each frame is switched on by an
//     activation literal passed as an assumption, and learned clauses
//     survive across bounds. Same answers as EngineSAT; O(k) instead of
//     O(k²) total encoding work under Deepen.
//   - EngineJSAT: the paper's contribution; holds a single copy of the
//     transition relation and walks the state graph depth-first,
//     deciding one time frame at a time (formula (4) plus an implicit
//     sliding (U,V) window).
//   - EngineQBFLinear: the paper's formula (2); one transition-relation
//     copy under a universally quantified state pair, decided by the
//     built-in search-based QBF solver.
//   - EngineQBFSquaring: the paper's formula (3); iterative squaring,
//     with quantifier alternation depth growing as log k.
//   - EnginePortfolio: races a configurable set of the engines above
//     (default sat, sat-incr, jsat) concurrently on one query, each on
//     its own solver. The first decisive answer wins, the result is
//     tagged with the winning engine (Result.DecidedBy), and the losing
//     solvers are stopped through a cooperative cancellation flag they
//     poll alongside their deadlines. Because the competitors have
//     complementary space/time profiles, the portfolio is within
//     scheduling noise of the best single engine on every instance
//     without knowing which one that is up front.
//
// Batches of independent queries go through CheckMany / DeepenMany: a
// bounded work-stealing worker pool runs one Job per queue slot (each
// with its own engine and Options) and returns results in job order.
// Long-running checks are aborted early either by Options.Timeout or
// cooperatively via Options.Cancel, which may be shared — cancelling a
// parent flag stops every check derived from it.
//
// Long-lived clients keep a warm engine across requests with a Session
// (NewSession): one persistent sat-incr or jsat solver per model whose
// learned state and proven-unreachable prefix carry over, so deepening
// to a larger bound resumes instead of restarting. ModelHash provides
// the content address used to key verdict caches; the bmcd service
// (internal/service, cmd/bmcd) builds its job queue, verdict cache and
// session pool on exactly these two primitives.
//
// Models come from the MSL hardware description language (LoadMSL), from
// ASCII AIGER files (LoadAIGER), or are built programmatically against
// the internal circuit packages.
//
// Quick start:
//
//	sys, _ := sebmc.LoadMSL(src)
//	res := sebmc.Check(sys, 12, sebmc.EngineJSAT, sebmc.Options{})
//	if res.Status == sebmc.Reachable {
//	    fmt.Print(res.Witness)
//	}
package sebmc

import (
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/aig"
	"repro/internal/bmc"
	"repro/internal/explicit"
	"repro/internal/induction"
	"repro/internal/interp"
	"repro/internal/jsat"
	"repro/internal/model"
	"repro/internal/msl"
	"repro/internal/qbf"
	"repro/internal/sat"
	"repro/internal/tseitin"
)

// System is a finite-state transition system with a bad-state predicate.
type System = model.System

// Result is the outcome of a bounded check; see Status and Witness.
type Result = bmc.Result

// Witness is a counterexample trace.
type Witness = bmc.Witness

// ParseWitness reads a Witness.String rendering back into a Witness,
// so a serialized trace can be replay-validated (Witness.Validate) on
// another process — the cluster's verdict replication depends on it.
func ParseWitness(s string) (*Witness, error) { return bmc.ParseWitness(s) }

// Status is the outcome classification of a check.
type Status = bmc.Status

// Check outcomes.
const (
	Unknown     = bmc.Unknown
	Reachable   = bmc.Reachable
	Unreachable = bmc.Unreachable
	// Safe is the terminal outcome: no bad state is reachable at ANY
	// bound, not just the one asked about. Only the unbounded engines
	// (EngineInterp, k-induction via Prove) produce it; it always
	// implies Unreachable at every k under both semantics.
	Safe = bmc.Safe
)

// Semantics selects exactly-k or at-most-k reachability.
type Semantics = bmc.Semantics

// Reachability semantics.
const (
	Exact  = bmc.Exact
	AtMost = bmc.AtMost
)

// AddSelfLoop returns the paper's self-loop transform of the system: a
// fresh primary input appended after the originals selects a stutter
// step, so reachability in exactly k steps of the result equals
// reachability in at most k steps of the original. Witnesses produced
// under AtMost semantics — and by the deepening schedules that force it
// internally — replay against this transform, not the plain system.
func AddSelfLoop(sys *System) *System { return model.AddSelfLoop(sys) }

// Engine selects the decision procedure.
type Engine uint8

// The single engines, plus the concurrent portfolio.
const (
	EngineSAT Engine = iota
	EngineJSAT
	EngineQBFLinear
	EngineQBFSquaring
	EngineSATIncr
	EnginePortfolio
	// EngineInterp is the unbounded interpolation engine: it ignores
	// the exact/at-most distinction (its answers are bound-independent
	// or carry their own depth) and can return the terminal Safe. Check
	// maps its result onto the requested bound; Prove uses it directly.
	EngineInterp
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineSAT:
		return "sat"
	case EngineJSAT:
		return "jsat"
	case EngineQBFLinear:
		return "qbf-linear"
	case EngineQBFSquaring:
		return "qbf-squaring"
	case EngineSATIncr:
		return "sat-incr"
	case EnginePortfolio:
		return "portfolio"
	case EngineInterp:
		return "interp"
	}
	return "unknown"
}

// ParseEngine converts a name ("sat", "sat-incr", "jsat", "qbf-linear",
// "qbf-squaring", "portfolio", "interp") to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "sat":
		return EngineSAT, nil
	case "sat-incr":
		return EngineSATIncr, nil
	case "jsat":
		return EngineJSAT, nil
	case "qbf-linear":
		return EngineQBFLinear, nil
	case "qbf-squaring":
		return EngineQBFSquaring, nil
	case "portfolio":
		return EnginePortfolio, nil
	case "interp":
		return EngineInterp, nil
	}
	return 0, fmt.Errorf("sebmc: unknown engine %q", s)
}

// Schedule selects the bound schedule an iterative-deepening run
// follows. Single bounded checks ignore it.
type Schedule uint8

// Deepening schedules.
const (
	// ScheduleLinear steps k → k+1: one solver invocation per bound,
	// O(maxBound) invocations total. The default.
	ScheduleLinear Schedule = iota
	// ScheduleGeometric grows the bound geometrically (k → 2k by
	// default, Options.GeometricRatio to change it) under at-most-k
	// semantics, then binary-searches the last growth interval, so
	// FoundAt is still the exact shortest counterexample depth in
	// O(log maxBound) invocations. Deepen forces at-most-k semantics
	// for it: skipping bounds is unsound under exact-k.
	ScheduleGeometric
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleLinear:
		return "linear"
	case ScheduleGeometric:
		return "geometric"
	}
	return "unknown"
}

// ParseSchedule converts a name ("linear", "geometric"; "" defaults to
// linear) to a Schedule.
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "linear":
		return ScheduleLinear, nil
	case "geometric":
		return ScheduleGeometric, nil
	}
	return 0, fmt.Errorf("sebmc: unknown schedule %q (want linear or geometric)", s)
}

// Options bound a check. The zero value runs unbounded with exact-k
// semantics and the full Tseitin transformation.
type Options struct {
	// Semantics selects exact-k (default) or at-most-k reachability.
	Semantics Semantics
	// Timeout aborts the check (Status Unknown) when exceeded.
	Timeout time.Duration
	// ConflictBudget bounds CDCL conflicts (EngineSAT and, per query,
	// EngineJSAT).
	ConflictBudget int64
	// QueryBudget bounds the total incremental SAT calls of EngineJSAT.
	QueryBudget int64
	// NodeBudget bounds QDPLL search nodes of the QBF engines.
	NodeBudget int64
	// PlaistedGreenbaum selects the polarity-aware CNF transformation
	// instead of full Tseitin.
	PlaistedGreenbaum bool
	// DisableJSATCache turns off jSAT's hopeless-state cache.
	DisableJSATCache bool
	// Cancel, when non-nil, aborts the check cooperatively: the flag is
	// polled by every solver loop on the same schedule as its deadline,
	// so a cancelled check returns Unknown within a few conflicts. The
	// portfolio engine derives per-competitor flags from it, and batch
	// jobs may share one parent flag to cancel a whole run.
	Cancel *CancelFlag
	// PortfolioEngines selects the competitors EnginePortfolio races.
	// Empty means DefaultPortfolio. EnginePortfolio itself is ignored in
	// the list (a portfolio does not race portfolios). EngineQBFSquaring
	// may be opted in as a deep-bug arm: its deepening runs follow the
	// at-most-k squaring schedule, so when it wins a Deepen race,
	// FoundAt is the first power-of-two bound covering the
	// counterexample rather than the exact shortest depth.
	PortfolioEngines []Engine
	// Schedule selects the deepening bound schedule (Deepen, Session
	// deepening, DeepenMany). ScheduleGeometric implies at-most-k
	// semantics. EngineQBFSquaring ignores it and always follows its
	// power-of-two squaring schedule.
	Schedule Schedule
	// GeometricRatio is ScheduleGeometric's bound-growth factor; values
	// ≤ 1 mean the default doubling (k → 2k).
	GeometricRatio float64
}

func (o Options) mode() tseitin.Mode {
	if o.PlaistedGreenbaum {
		return tseitin.PlaistedGreenbaum
	}
	return tseitin.Full
}

func (o Options) deadline() time.Time {
	if o.Timeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(o.Timeout)
}

func (o Options) incremental() bmc.IncrementalOptions {
	// Timeout becomes a per-query deadline, re-armed at every bound —
	// the same per-check contract the other engines get from a fresh
	// solver per bound.
	return bmc.IncrementalOptions{
		Semantics:    o.Semantics,
		Mode:         o.mode(),
		SAT:          sat.Options{ConflictBudget: o.ConflictBudget, Cancel: o.Cancel},
		QueryTimeout: o.Timeout,
	}
}

// Check runs one bounded reachability query. The result is tagged with
// the engine that decided it (Result.DecidedBy) — under EnginePortfolio,
// the race winner.
func Check(sys *System, k int, engine Engine, opts Options) Result {
	if engine == EnginePortfolio {
		return checkPortfolio(sys, k, opts)
	}
	r := checkSingle(sys, k, engine, opts)
	r.DecidedBy = engine.String()
	return r
}

func checkSingle(sys *System, k int, engine Engine, opts Options) Result {
	switch engine {
	case EngineSAT:
		return bmc.SolveUnroll(sys, k, bmc.UnrollOptions{
			Semantics: opts.Semantics,
			Mode:      opts.mode(),
			SAT:       sat.Options{ConflictBudget: opts.ConflictBudget, Deadline: opts.deadline(), Cancel: opts.Cancel},
		})
	case EngineSATIncr:
		return bmc.SolveIncremental(sys, k, opts.incremental())
	case EngineJSAT:
		// One deadline for the whole query: computing it per solver
		// would hand the search and step solvers two slightly different
		// cutoffs for the same check.
		d := opts.deadline()
		s := jsat.New(sys, jsat.Options{
			Semantics:    opts.Semantics,
			Mode:         opts.mode(),
			QueryBudget:  opts.QueryBudget,
			Deadline:     d,
			Cancel:       opts.Cancel,
			DisableCache: opts.DisableJSATCache,
			SAT:          sat.Options{ConflictBudget: opts.ConflictBudget, Deadline: d},
		})
		return s.Check(k)
	case EngineQBFLinear:
		return bmc.SolveLinear(sys, k, bmc.LinearOptions{
			Semantics: opts.Semantics,
			Mode:      opts.mode(),
			QBF:       qbf.Options{NodeBudget: opts.NodeBudget, Deadline: opts.deadline(), Cancel: opts.Cancel},
		})
	case EngineQBFSquaring:
		// SolveSquaring answers non-power-of-two bounds itself by
		// rounding up to the next power of two under at-most-k
		// semantics (Result.K reports the bound actually checked), so
		// the only error left here is a negative bound.
		r, err := bmc.SolveSquaring(sys, k, bmc.SquaringOptions{
			Semantics: opts.Semantics,
			Mode:      opts.mode(),
			QBF:       qbf.Options{NodeBudget: opts.NodeBudget, Deadline: opts.deadline(), Cancel: opts.Cancel},
		})
		if err != nil {
			return Result{Status: bmc.Unknown, K: k}
		}
		return r
	case EngineInterp:
		return checkInterp(sys, k, opts)
	}
	return Result{Status: bmc.Unknown, K: k}
}

// checkInterp answers a bounded query with the unbounded interpolation
// engine, mapping its bound-independent verdicts onto the requested k.
// The engine works with at-most-k meaning throughout (a counterexample
// at depth d answers every bound ≥ d, a refutation of depths ≤ d every
// bound ≤ d); Options.Semantics is ignored — see the Engine doc.
func checkInterp(sys *System, k int, opts Options) Result {
	maxW := k
	if maxW < 64 {
		maxW = 64
	}
	ir := interp.Solve(sys, interp.Options{
		Mode:      opts.mode(),
		SAT:       sat.Options{ConflictBudget: opts.ConflictBudget, Deadline: opts.deadline(), Cancel: opts.Cancel},
		MaxWindow: maxW,
	})
	res := Result{
		Status:    bmc.Unknown,
		K:         k,
		System:    ir.System,
		Conflicts: ir.Conflicts,
		PeakBytes: ir.PeakBytes,
	}
	switch ir.Status {
	case bmc.Safe:
		res.Status = bmc.Safe
	case bmc.Reachable:
		if ir.K <= k {
			res.Status = bmc.Reachable
			res.K = ir.K
			res.Witness = ir.Witness
		}
	case bmc.Unreachable:
		if ir.K >= k {
			res.Status = bmc.Unreachable
		}
	}
	return res
}

// DeepenResult reports an iterative-deepening run.
type DeepenResult = bmc.DeepenResult

// Deepen searches bounds 0..maxBound for the shortest counterexample
// using the given engine. Options.Schedule selects the bound schedule:
// linear (k → k+1, the default) or geometric (k → 2k under at-most-k
// semantics — forced for the run — with binary-search refinement of the
// last doubling interval, so FoundAt is still the exact shortest depth
// in O(log maxBound) solver invocations). With EngineQBFSquaring the
// schedule is always 0,1,2,4,8,… under at-most-k semantics (the paper's
// self-loop trick) and FoundAt is the first power-of-two bound covering
// the counterexample — the squaring encoding cannot answer the
// in-between bounds a refinement would probe. A non-power-of-two
// maxBound gets one extra probe at the next power of two up, so
// Unreachable always certifies the full 0..maxBound range; if the
// counterexample first appears in that rounded-up probe it cannot be
// localized relative to maxBound and the run reports Unknown (use
// another engine for an exact answer there). EngineSATIncr takes a
// fast path: one persistent solver serves every bound, so each step
// encodes only the newest time frame and keeps all learned clauses —
// under the geometric schedule the same solver also serves the jumps
// and the refinement probes. EnginePortfolio races whole deepening runs
// and keeps the first that completes.
func Deepen(sys *System, maxBound int, engine Engine, opts Options) DeepenResult {
	if engine == EnginePortfolio {
		return deepenPortfolio(sys, maxBound, opts)
	}
	d := deepenSingle(sys, maxBound, engine, opts)
	d.DecidedBy = engine.String()
	return d
}

func deepenSingle(sys *System, maxBound int, engine Engine, opts Options) DeepenResult {
	if engine == EngineQBFSquaring {
		opts.Semantics = AtMost
		check := func(m *System, k int) Result { return Check(m, k, engine, opts) }
		return bmc.DeepenSquaring(sys, maxBound, check)
	}
	if opts.Schedule == ScheduleGeometric {
		opts.Semantics = AtMost
		if engine == EngineSATIncr {
			return bmc.DeepenGeometricIncremental(sys, maxBound, opts.GeometricRatio, opts.incremental())
		}
		check := func(m *System, k int) Result { return Check(m, k, engine, opts) }
		return bmc.DeepenGeometric(sys, maxBound, opts.GeometricRatio, check)
	}
	if engine == EngineSATIncr {
		return bmc.DeepenIncremental(sys, maxBound, opts.incremental())
	}
	check := func(m *System, k int) Result { return Check(m, k, engine, opts) }
	return bmc.DeepenLinear(sys, maxBound, check)
}

// ProveResult is the legacy k-induction result shape.
//
// Deprecated: Prove now returns the unified Verdict. ProveKInduction
// keeps the old contract for callers that want the raw induction arm.
type ProveResult = induction.Result

// Unbounded proof outcomes of the legacy k-induction surface.
//
// / Deprecated: compare Verdict.Status against Safe / Reachable instead.
const (
	Proved    = induction.Proved
	Falsified = induction.Falsified
	// ProofUnknown is the inconclusive outcome of ProveKInduction
	// (distinct from the bounded-check Unknown, a different type).
	ProofUnknown = induction.Unknown
)

// ProveKInduction attempts a full safety proof by k-induction with the
// simple-path constraint, deepening k up to maxK — the bound-sufficiency
// technique the paper's introduction positions BMC against.
//
// / Deprecated: use Prove, which races k-induction against interpolation
// and returns a Verdict with a replayable certificate.
func ProveKInduction(sys *System, maxK int, opts Options) ProveResult {
	return induction.Prove(sys, maxK, induction.Options{
		Mode: opts.mode(),
		SAT:  sat.Options{ConflictBudget: opts.ConflictBudget, Deadline: opts.deadline(), Cancel: opts.Cancel},
	})
}

// LoadMSL elaborates a Model Specification Language source text.
func LoadMSL(src string) (*System, error) { return msl.Load(src) }

// LoadMSLFile elaborates an MSL file.
func LoadMSLFile(path string) (*System, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return msl.Load(string(b))
}

// LoadAIGER reads an ASCII AIGER ("aag") circuit; output `badOutput`
// (typically 0) is taken as the bad-state predicate.
func LoadAIGER(r io.Reader, badOutput int) (*System, error) {
	g, err := aig.ParseAAG(r)
	if err != nil {
		return nil, err
	}
	if g.NumOutputs() <= badOutput {
		return nil, fmt.Errorf("sebmc: circuit has %d outputs, need output %d", g.NumOutputs(), badOutput)
	}
	return model.New("aiger", g, badOutput), nil
}

// LoadAIGERFile reads an .aag file.
func LoadAIGERFile(path string, badOutput int) (*System, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sys, err := LoadAIGER(f, badOutput)
	if err != nil {
		return nil, err
	}
	sys.Name = path
	return sys, nil
}

// WriteAIGER writes the system's circuit in ASCII AIGER format.
func WriteAIGER(sys *System, w io.Writer) error { return sys.Circ.WriteAAG(w) }

// ShortestCounterexample runs the explicit-state oracle (small systems
// only: ≤24 latches, ≤16 inputs) and returns the depth of the shortest
// counterexample, or -1 when the system is safe.
func ShortestCounterexample(sys *System) int {
	return explicit.New(sys).ShortestCounterexample()
}
