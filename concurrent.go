package sebmc

// This file is the concurrency face of the library: the portfolio
// engine (race complementary engines per query, first decisive answer
// wins, losers cancelled) and the batch runners CheckMany / DeepenMany
// (bounded work-stealing pool, deterministic result ordering). The
// mechanics live in internal/portfolio; the cooperative stop signal the
// solvers poll lives in internal/cancel.

import (
	"repro/internal/cancel"
	"repro/internal/portfolio"
)

// CancelFlag is a cooperative cancellation signal. Construct one with
// NewCancelFlag (or as a zero-value &CancelFlag{}), hand it to checks
// via Options.Cancel, and Set it to make every solver polling it return
// Unknown within a few conflicts. Derive per-query children from a
// parent with DeriveCancel; cancelling the parent cancels the children.
type CancelFlag = cancel.Flag

// NewCancelFlag returns a fresh root cancellation flag.
func NewCancelFlag() *CancelFlag { return &cancel.Flag{} }

// DeriveCancel returns a child flag that is cancelled when either it or
// parent is set. A nil parent yields a fresh root flag.
func DeriveCancel(parent *CancelFlag) *CancelFlag { return cancel.Derived(parent) }

// DefaultPortfolio is the engine set EnginePortfolio races when
// Options.PortfolioEngines is empty: the three witness-producing SAT
// procedures with complementary space/time profiles. The QBF engines
// are omitted by default — on anything beyond toy instances they lose
// every race (the observation that motivated jSAT in the first place) —
// but may be opted in through PortfolioEngines.
func DefaultPortfolio() []Engine {
	return []Engine{EngineSAT, EngineSATIncr, EngineJSAT}
}

// competitors resolves the configured portfolio, dropping any
// EnginePortfolio entries (a portfolio does not race portfolios).
func (o Options) competitors() []Engine {
	list := o.PortfolioEngines
	if len(list) == 0 {
		list = DefaultPortfolio()
	}
	out := make([]Engine, 0, len(list))
	for _, e := range list {
		if e != EnginePortfolio {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		out = DefaultPortfolio()
	}
	return out
}

// checkPortfolio races one bounded query across the configured engines,
// each on its own solver over the shared read-only system. The first
// Reachable/Unreachable answer wins and the rest are cancelled; if every
// competitor comes back Unknown (budget, timeout, or caller
// cancellation), so does the portfolio.
func checkPortfolio(sys *System, k int, opts Options) Result {
	engines := opts.competitors()
	// The squaring engine answers a non-power-of-two bound by rounding
	// it up under at-most-k semantics — a different question than the
	// one the other competitors race, so its answer must not win here.
	// Deepening races are unaffected: every bound the squaring schedule
	// queries is a power of two.
	if k&(k-1) != 0 {
		kept := engines[:0]
		for _, e := range engines {
			if e != EngineQBFSquaring {
				kept = append(kept, e)
			}
		}
		if len(kept) > 0 {
			engines = kept
		}
	}
	tasks := make([]portfolio.Task[Result], len(engines))
	for i, eng := range engines {
		eng := eng
		tasks[i] = portfolio.Task[Result]{
			Name: eng.String(),
			// The arm runs on its own goroutine: an uncontained panic
			// there would kill the process, not the request, so each arm
			// recovers into an indecisive Err result (which can never win
			// the race).
			Run: func(c *cancel.Flag) (r Result) {
				defer containResult(&r, k)
				o := opts
				o.Cancel = c
				return Check(sys, k, eng, o)
			},
		}
	}
	out := portfolio.Race(opts.Cancel, func(r Result) bool { return r.Status != Unknown }, tasks)
	res := out.Value
	if out.Winner < 0 {
		res.DecidedBy = "" // nobody decided; drop the fallback's tag
	}
	return res
}

// deepenPortfolio races whole iterative-deepening runs. Racing the runs
// rather than the individual bounds lets each engine keep its own
// deepening advantage (the incremental engine its persistent solver,
// jSAT its hopeless cache across bounds, an opted-in EngineQBFSquaring
// its power-of-two squaring schedule — see Options.PortfolioEngines for
// the FoundAt caveat when that arm wins).
func deepenPortfolio(sys *System, maxBound int, opts Options) DeepenResult {
	engines := opts.competitors()
	tasks := make([]portfolio.Task[DeepenResult], len(engines))
	for i, eng := range engines {
		eng := eng
		tasks[i] = portfolio.Task[DeepenResult]{
			Name: eng.String(),
			// Same containment as checkPortfolio: a panicking arm loses
			// the race instead of killing the process.
			Run: func(c *cancel.Flag) (d DeepenResult) {
				defer containDeepen(&d)
				o := opts
				o.Cancel = c
				return Deepen(sys, maxBound, eng, o)
			},
		}
	}
	out := portfolio.Race(opts.Cancel, func(d DeepenResult) bool { return d.Status != Unknown }, tasks)
	res := out.Value
	if out.Winner < 0 {
		res.DecidedBy = ""
	}
	return res
}

// Job is one item of a batch run: a system, a bound (the max bound for
// DeepenMany), the engine to use — EnginePortfolio included — and the
// item's own Options.
type Job struct {
	Sys    *System
	K      int
	Engine Engine
	Opts   Options
}

// CheckMany runs every job's bounded check on a bounded pool of
// workers and returns the results in job order, regardless of which
// worker finished when. workers <= 0 defaults to GOMAXPROCS. Idle
// workers steal the next pending job, so a batch of uneven queries
// stays load-balanced. To abort a whole batch, share one parent
// CancelFlag across the jobs' Options (or derive children from it) and
// Set it: in-flight checks return Unknown within a few conflicts and
// the remaining jobs complete immediately as Unknown.
func CheckMany(jobs []Job, workers int) []Result {
	return portfolio.Map(workers, jobs, func(_ int, j Job) (r Result) {
		// Pool workers are shared goroutines: one panicking item must
		// become that item's Err result, not the process's end.
		defer containResult(&r, j.K)
		return Check(j.Sys, j.K, j.Engine, j.Opts)
	})
}

// DeepenMany is CheckMany for iterative-deepening runs: each job
// searches bounds 0..K with its engine, on the same work-stealing pool
// and with the same deterministic result ordering.
func DeepenMany(jobs []Job, workers int) []DeepenResult {
	return portfolio.Map(workers, jobs, func(_ int, j Job) (d DeepenResult) {
		defer containDeepen(&d)
		return Deepen(j.Sys, j.K, j.Engine, j.Opts)
	})
}
