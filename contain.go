package sebmc

// Crash containment: the library-level half of the service's
// fault-isolation story. A solver panic — a real bug or an armed
// faultpoint — must never cross a concurrency boundary (it would kill
// the whole process from a portfolio or batch goroutine) and must never
// leave a warm Session trusted (its solver state is arbitrary after an
// unwound stack). This file defines the error type a recovered panic
// becomes and the recover helpers the Session, portfolio arms, and
// batch closures share.

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// PanicError wraps a panic recovered inside a solver or session. The
// original panic value and the stack at recovery are retained for
// operators; Error keeps the one-line summary.
type PanicError struct {
	Val   any    // the value passed to panic
	Stack []byte // debug.Stack() at the recovery point
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("solver panic: %v", e.Val)
}

// ErrSessionPoisoned is returned (wrapped) by Session methods after a
// request on that session panicked: the warm solver state is untrusted
// and the session must be discarded, never reused.
var ErrSessionPoisoned = errors.New("sebmc: session poisoned by an earlier panic")

// AsPanic unwraps a PanicError from err, reporting whether err stems
// from a recovered panic (as opposed to, say, a budget Unknown or a
// quarantine rejection).
func AsPanic(err error) (*PanicError, bool) {
	var pe *PanicError
	if errors.As(err, &pe) {
		return pe, true
	}
	return nil, false
}

// stackTrace captures the goroutine stack at a recovery point.
func stackTrace() []byte { return debug.Stack() }

// containResult is the deferred recover for code paths returning a
// Result: a panic becomes Result{Unknown, Err: *PanicError} in place.
func containResult(res *Result, k int) {
	if v := recover(); v != nil {
		*res = Result{Status: Unknown, K: k, Err: &PanicError{Val: v, Stack: debug.Stack()}}
	}
}

// containDeepen is containResult for deepening runs.
func containDeepen(res *DeepenResult) {
	if v := recover(); v != nil {
		*res = DeepenResult{Status: Unknown, FoundAt: -1, Err: &PanicError{Val: v, Stack: debug.Stack()}}
	}
}
