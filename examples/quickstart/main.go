// Quickstart: describe a design in MSL, hunt for a bug with the paper's
// space-efficient jSAT engine, and print the validated counterexample.
package main

import (
	"fmt"
	"log"

	sebmc "repro"
)

// An 8-bit up-counter with an enable input. The "assertion" we check is
// that the counter never reaches 0xC8 (200) — which is of course false
// once enough enabled cycles pass.
const design = `
model counter8
input en;
var count : 8 = 0;
next count = en ? count + 1 : count;
bad count == 0xC8;
`

func main() {
	sys, err := sebmc.LoadMSL(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %s: %d state bits, %d inputs\n\n", sys.Name, sys.NumStateVars(), sys.NumInputs())

	// A bounded check at exactly k=200 transitions: the counter must be
	// enabled on every cycle, so this is the shortest counterexample.
	// jSAT holds ONE copy of the transition relation regardless of k.
	res := sebmc.Check(sys, 200, sebmc.EngineJSAT, sebmc.Options{})
	fmt.Printf("k=200 (jsat): %v\n", res.Status)
	fmt.Printf("solver formula: %d clauses — compare one TR copy vs 200 in classical BMC\n\n", res.Formula.Clauses)

	if res.Status != sebmc.Reachable {
		log.Fatalf("expected a counterexample, got %v", res.Status)
	}
	if err := res.Witness.Validate(res.System); err != nil {
		log.Fatalf("counterexample failed validation: %v", err)
	}
	fmt.Println("counterexample found and validated; first and last frames:")
	fmt.Printf("frame   0: state=%s\n", frame(res.Witness.States[0]))
	fmt.Printf("frame 200: state=%s  (0xC8 = 11001000, LSB first: 00010011)\n\n", frame(res.Witness.States[200]))

	// Shorter bounds must be unreachable under exact-k semantics.
	res = sebmc.Check(sys, 150, sebmc.EngineJSAT, sebmc.Options{})
	fmt.Printf("k=150 (jsat): %v — the bug needs at least 200 enabled cycles\n", res.Status)

	// ...but at-most-k semantics finds the depth-200 bug at any k ≥ 200.
	res = sebmc.Check(sys, 220, sebmc.EngineJSAT, sebmc.Options{Semantics: sebmc.AtMost})
	fmt.Printf("k≤220 (jsat, at-most): %v\n", res.Status)
}

func frame(bits []bool) string {
	s := ""
	for _, b := range bits {
		if b {
			s += "1"
		} else {
			s += "0"
		}
	}
	return s
}
