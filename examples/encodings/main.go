// Encodings: the space argument of the paper, measured. One model, three
// encodings of "reachable in k steps", sizes printed as k grows:
//
//   - formula (1) — classical unrolling: k copies of the transition
//     relation, size Θ(k·|TR|);
//   - formula (2) — linear QBF: one TR copy plus an O(n) selector per
//     step, size Θ(|TR| + k·n);
//   - formula (3) — iterative squaring: one TR copy plus O(n) glue per
//     doubling, size Θ(|TR| + n·log k), at the price of log k quantifier
//     alternations.
package main

import (
	"fmt"

	"repro/internal/bmc"
	"repro/internal/circuits"
	"repro/internal/tseitin"
)

func main() {
	// A 16-bit counter: n = 16 state bits, a transition relation with a
	// ripple-carry incrementer — big enough that one TR copy dominates.
	sys := circuits.Counter(16, 60000)
	fmt.Printf("model %s: %d state bits\n\n", sys.Name, sys.NumStateVars())

	fmt.Printf("%6s | %10s | %10s %4s | %10s %4s %6s\n",
		"k", "(1) unroll", "(2) linear", "alt", "(3) square", "alt", "univ")
	for _, k := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		u := bmc.EncodeUnroll(sys, k, tseitin.Full).Stats()
		l := bmc.EncodeLinear(sys, k, tseitin.Full).Stats()
		s, err := bmc.EncodeSquaring(sys, k, tseitin.Full)
		if err != nil {
			panic(err)
		}
		st := s.Stats()
		fmt.Printf("%6d | %10d | %10d %4d | %10d %4d %6d\n",
			k, u.Clauses, l.Clauses, l.Alternations, st.Clauses, st.Alternations, st.Universals)
	}
	fmt.Println("\ncolumns are clause counts; 'alt' = quantifier alternations,")
	fmt.Println("'univ' = universally quantified variables (grows with log k for (3),")
	fmt.Println("stays 2n for (2), zero for (1) — the trade the paper explores)")
}
