// Arbiter mutual exclusion: a round-robin arbiter with captured requests
// is checked for double grants across a range of bounds, then searched
// with iterative deepening — including the paper's iterative-squaring
// schedule, whose bound doubles every iteration.
package main

import (
	"fmt"
	"log"

	sebmc "repro"
)

// Four-client round-robin arbiter. Requests are captured into pending
// bits; a one-hot token rotates; grant = token ∧ pending. The mutual
// exclusion property: no two grants in the same cycle.
const design = `
model arbiter4
input r0; input r1; input r2; input r3;

var p0 : 1 = 0;  var p1 : 1 = 0;  var p2 : 1 = 0;  var p3 : 1 = 0;
var t0 : 1 = 1;  var t1 : 1 = 0;  var t2 : 1 = 0;  var t3 : 1 = 0;

next p0 = r0;  next p1 = r1;  next p2 = r2;  next p3 = r3;
next t0 = t3;  next t1 = t0;  next t2 = t1;  next t3 = t2;

bad (t0 & p0 & t1 & p1) | (t0 & p0 & t2 & p2) | (t0 & p0 & t3 & p3)
  | (t1 & p1 & t2 & p2) | (t1 & p1 & t3 & p3) | (t2 & p2 & t3 & p3);
`

func main() {
	sys, err := sebmc.LoadMSL(design)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d state bits, %d inputs\n\n", sys.Name, sys.NumStateVars(), sys.NumInputs())

	// Bound-by-bound proof with the classical SAT engine.
	fmt.Println("bounded proofs (sat-unroll, exact-k):")
	for _, k := range []int{0, 2, 4, 8, 16} {
		r := sebmc.Check(sys, k, sebmc.EngineSAT, sebmc.Options{})
		if r.Status != sebmc.Unreachable {
			log.Fatalf("mutual exclusion violated at k=%d: %v", k, r.Status)
		}
		fmt.Printf("  k=%2d: %v (%d clauses)\n", k, r.Status, r.Formula.Clauses)
	}
	fmt.Println()

	// Deepening schedules: linear vs squaring. Both exhaust the range
	// without finding a counterexample; the squaring schedule needs
	// exponentially fewer iterations to cover the same depth.
	lin := sebmc.Deepen(sys, 32, sebmc.EngineSAT, sebmc.Options{})
	fmt.Printf("linear deepening to 32:   %v after %d iterations (bounds %v...)\n",
		lin.Status, lin.Iterations, lin.BoundsTried[:4])

	sq := sebmc.Deepen(sys, 32, sebmc.EngineQBFSquaring, sebmc.Options{NodeBudget: 100_000})
	fmt.Printf("squaring deepening to 32: %v after %d iterations (bounds %v)\n",
		sq.Status, sq.Iterations, sq.BoundsTried)
	fmt.Println()
	fmt.Println("note: the squaring engine hands formula (3) to a general-purpose QBF")
	fmt.Println("solver; on anything but tiny models it exhausts its budget (UNKNOWN) —")
	fmt.Println("exactly the observation that motivated the paper's jSAT procedure.")

	// jSAT on the same property: the arbiter's captured requests give
	// every state 2^4 successors, so the depth-first engine pays a far
	// higher price than the symbolic one — but still gets there.
	r := sebmc.Check(sys, 6, sebmc.EngineJSAT, sebmc.Options{QueryBudget: 200_000})
	fmt.Printf("\njsat at k=6: %v\n", r.Status)
}
