// Traffic light safety: prove that a two-road controller never shows
// green in both directions, bound by bound, and compare what the two
// SAT-based engines pay for the proof.
//
// This is the "unsatisfiable instance" workload of the paper's
// evaluation: every bound must be refuted, so the solvers do the full
// work at each k, and the difference in formula growth between the
// unrolled encoding (1) and jSAT's single-copy formula (4) is visible
// directly.
package main

import (
	"fmt"
	"log"
	"time"

	sebmc "repro"
)

// A phase-and-timer traffic light controller. The two green indicators
// are registered decodes of the phase; bad = both green at once.
const design = `
model traffic
var timer : 3 = 0;
var phase : 2 = 0;
var greenA : 1 = 1;
var greenB : 1 = 0;

next timer  = timer == 7 ? 0 : timer + 1;
next phase  = timer == 7 ? phase + 1 : phase;
next greenA = (timer == 7 ? phase + 1 : phase) == 0;
next greenB = (timer == 7 ? phase + 1 : phase) == 2;

bad greenA & greenB;
`

func main() {
	sys, err := sebmc.LoadMSL(design)
	if err != nil {
		log.Fatal(err)
	}
	// Ground truth from the explicit-state oracle (the model is tiny).
	if d := sebmc.ShortestCounterexample(sys); d != -1 {
		log.Fatalf("controller is unexpectedly unsafe at depth %d", d)
	}
	fmt.Println("oracle: controller is safe (no reachable double-green)")
	fmt.Println()
	fmt.Printf("%6s | %-13s %10s %9s | %-13s %10s %9s\n",
		"k", "sat-unroll", "clauses", "time", "jsat", "clauses", "time")

	for _, k := range []int{4, 8, 16, 32, 64} {
		t0 := time.Now()
		rs := sebmc.Check(sys, k, sebmc.EngineSAT, sebmc.Options{})
		satTime := time.Since(t0)

		t1 := time.Now()
		rj := sebmc.Check(sys, k, sebmc.EngineJSAT, sebmc.Options{})
		jsatTime := time.Since(t1)

		if rs.Status != sebmc.Unreachable || rj.Status != sebmc.Unreachable {
			log.Fatalf("k=%d: engines disagree with the oracle: sat=%v jsat=%v", k, rs.Status, rj.Status)
		}
		fmt.Printf("%6d | %-13v %10d %9v | %-13v %10d %9v\n",
			k, rs.Status, rs.Formula.Clauses, satTime.Round(time.Microsecond),
			rj.Status, rj.Formula.Clauses, jsatTime.Round(time.Microsecond))
	}
	fmt.Println()
	fmt.Println("the unrolled formula grows with k; jSAT's stays a single transition relation")
}
