//go:build race

package sebmc_test

// raceEnabled reports whether the race detector is active; alloc-count
// assertions are skipped under it.
const raceEnabled = true
